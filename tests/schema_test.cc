#include "labbase/schema.h"

#include <gtest/gtest.h>

namespace labflow::labbase {
namespace {

TEST(SchemaTest, MaterialClassLifecycle) {
  Schema s;
  auto clone = s.DefineMaterialClass("clone");
  ASSERT_TRUE(clone.ok());
  EXPECT_TRUE(s.IsMaterialClass(clone.value()));
  EXPECT_FALSE(s.IsStepClass(clone.value()));
  EXPECT_EQ(s.MaterialClassByName("clone").value(), clone.value());
  EXPECT_EQ(s.ClassName(clone.value()).value(), "clone");
  EXPECT_TRUE(s.DefineMaterialClass("clone").status().IsAlreadyExists());
  EXPECT_TRUE(s.MaterialClassByName("nope").status().IsNotFound());
}

TEST(SchemaTest, StepClassVersionsIdentifiedByAttrSet) {
  Schema s;
  auto step = s.DefineStepClass("measure", {"a", "b"});
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(s.VersionCount(step.value()).value(), 1u);

  // Same set (any order, with duplicates) -> same version.
  EXPECT_EQ(s.DefineStepClass("measure", {"b", "a", "a"}).value(),
            step.value());
  EXPECT_EQ(s.VersionCount(step.value()).value(), 1u);

  // Different set -> new version.
  EXPECT_EQ(s.DefineStepClass("measure", {"a", "b", "c"}).value(),
            step.value());
  EXPECT_EQ(s.VersionCount(step.value()).value(), 2u);
  EXPECT_EQ(s.LatestVersion(step.value()).value(), 1u);

  // Re-declaring an OLD attribute set does not add a third version.
  EXPECT_EQ(s.DefineStepClass("measure", {"a", "b"}).value(), step.value());
  EXPECT_EQ(s.VersionCount(step.value()).value(), 2u);

  // Version attribute sets are retrievable.
  auto v0 = s.VersionAttrs(step.value(), 0);
  auto v1 = s.VersionAttrs(step.value(), 1);
  ASSERT_TRUE(v0.ok() && v1.ok());
  EXPECT_EQ(v0->size(), 2u);
  EXPECT_EQ(v1->size(), 3u);
  EXPECT_TRUE(s.VersionAttrs(step.value(), 2).status().IsNotFound());
}

TEST(SchemaTest, ClassNamespaceIsShared) {
  Schema s;
  ASSERT_TRUE(s.DefineMaterialClass("thing").ok());
  // A step class may not reuse a material-class name.
  EXPECT_TRUE(s.DefineStepClass("thing", {"x"}).status().IsInvalidArgument());
  ASSERT_TRUE(s.DefineStepClass("do_thing", {"x"}).ok());
  EXPECT_TRUE(s.DefineMaterialClass("do_thing").status().IsAlreadyExists());
}

TEST(SchemaTest, AttributesAreGlobalAndInterned) {
  Schema s;
  ASSERT_TRUE(s.DefineStepClass("one", {"shared", "only_one"}).ok());
  ASSERT_TRUE(s.DefineStepClass("two", {"shared", "only_two"}).ok());
  AttrId shared = s.AttributeByName("shared").value();
  // "shared" appears once in the registry; both classes reference it.
  EXPECT_EQ(s.attribute_count(), 3u);
  EXPECT_EQ(s.AttributeName(shared).value(), "shared");
  EXPECT_TRUE(s.AttributeByName("ghost").status().IsNotFound());
  EXPECT_TRUE(s.AttributeName(999).status().IsNotFound());
}

TEST(SchemaTest, StatesInternedOnce) {
  Schema s;
  StateId a = s.InternState("waiting");
  StateId b = s.InternState("waiting");
  EXPECT_EQ(a, b);
  EXPECT_EQ(s.state_count(), 1u);
  EXPECT_EQ(s.StateByName("waiting").value(), a);
  EXPECT_EQ(s.StateName(a).value(), "waiting");
}

TEST(SchemaTest, EncodeDecodeRoundtrip) {
  Schema s;
  s.DefineMaterialClass("clone").value();
  s.DefineMaterialClass("gel").value();
  s.DefineStepClass("measure", {"a", "b"}).value();
  s.DefineStepClass("measure", {"a", "b", "c"}).value();  // evolve
  s.DefineStepClass("other", {"b"}).value();
  s.InternState("s1");
  s.InternState("s2");

  auto back = Schema::Decode(s.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == s);
  // Decoded schema is fully functional, ids preserved.
  EXPECT_EQ(back->MaterialClassByName("gel").value(),
            s.MaterialClassByName("gel").value());
  EXPECT_EQ(back->VersionCount(s.StepClassByName("measure").value()).value(),
            2u);
  EXPECT_EQ(back->AttributeByName("c").value(),
            s.AttributeByName("c").value());
  EXPECT_EQ(back->StateByName("s2").value(), s.StateByName("s2").value());
}

TEST(SchemaTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Schema::Decode("not a schema").ok());
  Schema s;
  s.DefineMaterialClass("x").value();
  std::string blob = s.Encode();
  EXPECT_FALSE(Schema::Decode(blob.substr(0, blob.size() / 2)).ok());
}

TEST(SchemaTest, EmptySchemaRoundtrips) {
  Schema s;
  auto back = Schema::Decode(s.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == s);
  EXPECT_EQ(back->class_count(), 0u);
}

}  // namespace
}  // namespace labflow::labbase
