#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string_view>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/codec.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/status_macros.h"
#include "common/value.h"

namespace labflow {
namespace {

// Sink defeating dead-code elimination in the CPU-burn test below.
volatile double benchmark_sink_ = 0;

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing clone");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: missing clone");
}

TEST(StatusTest, EqualityIsByCode) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusTest, StatusCodeNameIsDistinctForEveryCode) {
  std::set<std::string_view> names;
  for (int c = static_cast<int>(StatusCode::kOk);
       c <= static_cast<int>(StatusCode::kInternal); ++c) {
    const auto code = static_cast<StatusCode>(c);
    std::string_view name = StatusCodeName(code);
    EXPECT_FALSE(name.empty()) << "code " << c;
    EXPECT_NE(name, "Unknown") << "code " << c;
    names.insert(name);
    // Round trip: the name is exactly the ToString prefix of a Status
    // carrying that code.
    if (code != StatusCode::kOk) {
      Status st(code, "m");
      EXPECT_EQ(st.ToString(), std::string(name) + ": m");
    }
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
#ifdef NDEBUG
  // Release builds repair the misuse into an Internal error that names the
  // offending call site (via std::source_location).
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
  EXPECT_NE(r.status().ToString().find("common_test.cc"), std::string::npos)
      << r.status().ToString();
#else
  // Debug builds assert: constructing a Result from an OK Status is a
  // caller bug, not a recoverable condition.
  EXPECT_DEATH(
      {
        Result<int> r = Status::OK();
        benchmark_sink_ = r.ok() ? 1 : 0;
      },
      "OK Status");
#endif
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LABFLOW_ASSIGN_OR_RETURN(int h, Half(x));
  LABFLOW_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
}

Status CheckEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return Status::OK();
}

Status CheckBothEven(int a, int b) {
  LABFLOW_RETURN_IF_ERROR(CheckEven(a));
  LABFLOW_RETURN_IF_ERROR(CheckEven(b));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagatesFirstFailure) {
  EXPECT_TRUE(CheckBothEven(2, 4).ok());
  EXPECT_TRUE(CheckBothEven(1, 2).IsInvalidArgument());
  EXPECT_TRUE(CheckBothEven(2, 3).IsInvalidArgument());
}

Result<std::unique_ptr<int>> MakeBox(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return std::make_unique<int>(x);
}

Result<int> UnboxDoubled(int x) {
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(x));
  return *box * 2;
}

TEST(StatusMacrosTest, AssignOrReturnHandlesMoveOnlyPayloads) {
  EXPECT_EQ(UnboxDoubled(21).value(), 42);
  EXPECT_TRUE(UnboxDoubled(-1).status().IsOutOfRange());
}

TEST(StatusMacrosTest, IgnoreStatusDiscardsWithoutWarning) {
  // [[nodiscard]] + -Werror=unused-result makes a bare `CheckEven(1);` a
  // build break; this macro is the sanctioned escape hatch. The test is
  // that it compiles and has no effect on control flow.
  LABFLOW_IGNORE_STATUS(CheckEven(1),
                        "exercising the explicit-discard escape hatch");
  SUCCEED();
}

TEST(StatusMacrosTest, NodiscardHelpersStillYieldUsableValues) {
  // The [[nodiscard]] markers must not get in the way of normal use:
  // binding, inspecting, and branching on a Status/Result is unaffected.
  Status st = CheckEven(2);
  EXPECT_TRUE(st.ok());
  if (Status bad = CheckEven(3); !bad.ok()) {
    EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  } else {
    ADD_FAILURE() << "CheckEven(3) unexpectedly OK";
  }
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).real_value(), 2.5);
  EXPECT_EQ(Value::String("dna").string_value(), "dna");
  EXPECT_EQ(Value::Object(Oid(9)).oid_value(), Oid(9));
  EXPECT_EQ(Value::Time(Timestamp(123)).time_value().micros, 123);
}

TEST(ValueTest, ListConstructionAndEquality) {
  Value a = Value::MakeList({Value::Int(1), Value::String("x")});
  Value b = Value::MakeList({Value::Int(1), Value::String("x")});
  Value c = Value::MakeList({Value::Int(2), Value::String("x")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.list_value().size(), 2u);
}

TEST(ValueTest, IntAndRealAreDistinct) {
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
}

TEST(ValueTest, CompareIsTotalOrder) {
  std::vector<Value> vals = {
      Value::Null(),          Value::Bool(false),     Value::Int(-5),
      Value::Int(10),         Value::Real(0.5),       Value::String("abc"),
      Value::String("abd"),   Value::Object(Oid(1)),  Value::Time(Timestamp(2)),
      Value::MakeList({Value::Int(1)}),
      Value::MakeList({Value::Int(1), Value::Int(2)}),
  };
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(Value::Compare(vals[i], vals[i]), 0);
    for (size_t j = i + 1; j < vals.size(); ++j) {
      int ab = Value::Compare(vals[i], vals[j]);
      int ba = Value::Compare(vals[j], vals[i]);
      EXPECT_EQ(ab, -ba) << i << "," << j;
    }
  }
  EXPECT_LT(Value::Compare(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_LT(Value::Compare(Value::MakeList({Value::Int(1)}),
                           Value::MakeList({Value::Int(1), Value::Int(2)})),
            0);
}

TEST(ValueTest, ToStringRendersLiterals) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Object(Oid(17)).ToString(), "#17");
  EXPECT_EQ(Value::MakeList({Value::Int(1), Value::Int(2)}).ToString(),
            "[1, 2]");
}

TEST(CodecTest, ScalarRoundtrip) {
  Encoder enc;
  enc.PutU8(7);
  enc.PutU32(123456);
  enc.PutU64(0xFFFFFFFFFFFFULL);
  enc.PutI64(-987654321);
  enc.PutF64(3.14159);
  enc.PutString("genome");
  enc.PutBool(true);
  enc.PutFixed32(0xCAFEBABE);
  enc.PutFixed64(0xDEADBEEF12345678ULL);

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetU8().value(), 7);
  EXPECT_EQ(dec.GetU32().value(), 123456u);
  EXPECT_EQ(dec.GetU64().value(), 0xFFFFFFFFFFFFULL);
  EXPECT_EQ(dec.GetI64().value(), -987654321);
  EXPECT_DOUBLE_EQ(dec.GetF64().value(), 3.14159);
  EXPECT_EQ(dec.GetString().value(), "genome");
  EXPECT_TRUE(dec.GetBool().value());
  EXPECT_EQ(dec.GetFixed32().value(), 0xCAFEBABE);
  EXPECT_EQ(dec.GetFixed64().value(), 0xDEADBEEF12345678ULL);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, TruncatedInputIsCorruption) {
  Encoder enc;
  enc.PutString("long enough string");
  std::string buf = enc.buffer().substr(0, 5);
  Decoder dec(buf);
  EXPECT_TRUE(dec.GetString().status().IsCorruption());
}

TEST(CodecTest, ValueRoundtripAllTypes) {
  std::vector<Value> vals = {
      Value::Null(),
      Value::Bool(true),
      Value::Int(-42),
      Value::Real(6.022e23),
      Value::String("ACGTACGT"),
      Value::Object(Oid(77)),
      Value::Time(Timestamp(1696000000)),
      Value::MakeList({Value::Int(1),
                       Value::MakeList({Value::String("nested")}),
                       Value::Null()}),
  };
  Encoder enc;
  for (const Value& v : vals) enc.PutValue(v);
  Decoder dec(enc.buffer());
  for (const Value& v : vals) {
    auto back = dec.GetValue();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, NegativeVarintsAreCompactForSmallMagnitudes) {
  Encoder enc;
  enc.PutI64(-1);
  EXPECT_LE(enc.size(), 2u) << "zig-zag must keep -1 short";
}

TEST(CodecFuzzTest, DecoderNeverCrashesOnGarbage) {
  // Property: whatever bytes arrive, GetValue either returns a value or a
  // clean Corruption status — never a crash or an out-of-bounds read.
  Rng rng(0xFEED);
  for (int round = 0; round < 2000; ++round) {
    size_t len = rng.NextBelow(64);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    Decoder dec(garbage);
    while (!dec.AtEnd()) {
      auto v = dec.GetValue();
      if (!v.ok()) break;  // clean failure
    }
  }
}

TEST(CodecFuzzTest, TruncatedValuePrefixesFailCleanly) {
  // Every proper prefix of a valid encoding must decode to an error, not
  // produce a bogus value silently... except prefixes that happen to form
  // a complete shorter value; we only require no crash and no false "ok"
  // *with trailing bytes consumed beyond the prefix*.
  Encoder enc;
  enc.PutValue(Value::MakeList(
      {Value::Int(123456), Value::String("ACGTACGTACGT"),
       Value::MakeList({Value::Real(2.5), Value::Object(Oid(17))})}));
  const std::string& full = enc.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    // Keep the prefix alive: Decoder borrows a view of it.
    std::string prefix = full.substr(0, cut);
    Decoder dec(prefix);
    auto v = dec.GetValue();
    if (cut < full.size()) {
      EXPECT_FALSE(v.ok()) << "prefix of length " << cut
                           << " decoded as a complete value";
    }
  }
}

TEST(CodecAdversarialTest, OverlongVarintIsCorruption) {
  // Eleven continuation bytes can never terminate inside 64 bits.
  std::string bytes(11, static_cast<char>(0x80));
  Decoder dec(bytes);
  EXPECT_TRUE(dec.GetU64().status().IsCorruption());
}

TEST(CodecAdversarialTest, TenthByteOverflowBitsAreCorruption) {
  // A ten-byte varint whose final byte carries more than the single bit
  // that fits in 2^63 silently loses payload — the decoder must reject it
  // rather than truncate. 0x02 in the tenth byte is the lowest such bit.
  std::string bytes(9, static_cast<char>(0xFF));
  bytes.push_back(0x02);
  Decoder dec(bytes);
  EXPECT_TRUE(dec.GetU64().status().IsCorruption());

  // The same encoding with only the legal bit (0x01) is u64 max.
  std::string max_bytes(9, static_cast<char>(0xFF));
  max_bytes.push_back(0x01);
  Decoder ok(max_bytes);
  auto v = ok.GetU64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), UINT64_MAX);
}

TEST(CodecAdversarialTest, HugeStringLengthCannotWrapBoundsCheck) {
  // A length prefix near 2^64 must not wrap `pos + n` and pass the bounds
  // check; it must also not drive an allocation.
  Encoder enc;
  enc.PutU64(UINT64_MAX - 7);
  enc.PutString("payload");
  std::string bytes = enc.Release();
  Decoder dec(bytes);
  EXPECT_TRUE(dec.GetString().status().IsCorruption());
}

TEST(CodecAdversarialTest, ListCountBeyondPayloadIsCorruption) {
  // tag=kList, count=2^20, no elements: the count alone must be rejected
  // against the bytes actually present (each element costs >= 1 byte).
  Encoder enc;
  enc.PutU8(7);  // ValueType::kList
  enc.PutU64(1u << 20);
  std::string bytes = enc.Release();
  Decoder dec(bytes);
  EXPECT_TRUE(dec.GetValue().status().IsCorruption());
}

TEST(CodecAdversarialTest, DeepValueNestingIsCorruptionNotStackOverflow) {
  // 10k nested single-element lists: each level is 2 bytes on the wire but
  // one decoder stack frame. The depth cap turns this from a stack
  // overflow into a clean Corruption.
  std::string bytes;
  for (int i = 0; i < 10000; ++i) {
    bytes.push_back(7);  // kList
    bytes.push_back(1);  // one element
  }
  bytes.push_back(0);  // innermost: kNull
  Decoder dec(bytes);
  EXPECT_TRUE(dec.GetValue().status().IsCorruption());

  // A legitimate shallow nesting still decodes.
  Encoder enc;
  enc.PutValue(Value::MakeList({Value::MakeList({Value::Int(1)})}));
  Decoder ok(enc.buffer());
  EXPECT_TRUE(ok.GetValue().ok());
}

TEST(CodecAdversarialTest, MalformedByteSweepNeverCrashes) {
  // Take a valid multi-field payload and flip every byte through several
  // values: every mutation must decode to either a clean value or a clean
  // error, and the decoder must never read past the buffer (ASan-checked
  // in the asan phase).
  Encoder enc;
  enc.PutU64(12345);
  enc.PutString("mutation-sweep");
  enc.PutValue(Value::MakeList({Value::Int(-5), Value::String("x")}));
  enc.PutI64(-99);
  const std::string base = enc.buffer();
  for (size_t pos = 0; pos < base.size(); ++pos) {
    for (uint8_t delta : {0x01, 0x7F, 0x80, 0xFF}) {
      std::string mutated = base;
      mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
      Decoder dec(mutated);
      // Replay the original field sequence; stop at the first error.
      if (!dec.GetU64().ok()) continue;
      if (!dec.GetString().ok()) continue;
      if (!dec.GetValue().ok()) continue;
      auto last = dec.GetI64();
      (void)last;
    }
  }
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(99), b(99), c(100);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double r = rng.NextReal();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(RngTest, PoissonMeanIsApproximatelyRight) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(18));
  double mean = sum / n;
  EXPECT_NEAR(mean, 18.0, 0.5);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.08) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.08, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(7);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    uint64_t r = rng.NextZipf(1000, 0.99);
    EXPECT_LT(r, 1000u);
    if (r < 100) ++low;
  }
  EXPECT_GT(low, n / 2) << "zipf(0.99) should put most mass in the head";
}

TEST(RngTest, ForksAreIndependentStreams) {
  Rng parent(11);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.NextU64() == f2.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DnaUsesOnlyBases) {
  Rng rng(3);
  std::string dna = rng.NextDna(500);
  EXPECT_EQ(dna.size(), 500u);
  for (char c : dna) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
}

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_us(), 0.0);
  EXPECT_EQ(h.PercentileUs(50), 0.0);
}

TEST(HistogramTest, PercentilesBracketObservations) {
  LatencyHistogram h;
  // 100 observations: 1us..100us.
  for (int i = 1; i <= 100; ++i) h.RecordSeconds(i * 1e-6);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean_us(), 50.5, 0.1);
  double p50 = h.PercentileUs(50);
  EXPECT_GE(p50, 45.0);
  EXPECT_LE(p50, 56.0);  // bucket resolution ~4%
  double p99 = h.PercentileUs(99);
  EXPECT_GE(p99, 95.0);
  EXPECT_LE(p99, 106.0);
  EXPECT_NEAR(h.max_us(), 100.0, 0.01);
  EXPECT_GE(h.PercentileUs(100), h.PercentileUs(0));
}

TEST(HistogramTest, WideDynamicRange) {
  LatencyHistogram h;
  h.RecordSeconds(100e-9);   // 0.1 us
  h.RecordSeconds(1e-3);     // 1 ms
  h.RecordSeconds(2.0);      // 2 s
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.PercentileUs(0), 1.0);
  EXPECT_GE(h.PercentileUs(100), 1.8e6);
}

TEST(HistogramTest, MergeCombinesCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 10; ++i) a.RecordSeconds(1e-6);
  for (int i = 0; i < 10; ++i) b.RecordSeconds(1e-3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_LE(a.PercentileUs(25), 2.0);
  EXPECT_GE(a.PercentileUs(90), 900.0);
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock(Timestamp(100));
  EXPECT_EQ(clock.now().micros, 100);
  clock.Advance(50);
  EXPECT_EQ(clock.now().micros, 150);
  clock.Set(Timestamp(7));
  EXPECT_EQ(clock.now().micros, 7);
}

TEST(ClockTest, StopwatchMeasuresForwardTime) {
  Stopwatch sw;
  double t1 = sw.ElapsedSeconds();
  double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(ClockTest, ResourceUsageDeltas) {
  ResourceUsage before = ResourceUsage::Now();
  double burn = 0;
  for (int i = 0; i < 2000000; ++i) burn += std::sqrt(static_cast<double>(i));
  benchmark_sink_ = burn;
  ResourceUsage delta = ResourceUsage::Now().Since(before);
  EXPECT_GE(delta.user_cpu_sec, 0.0);
  EXPECT_GE(delta.sys_cpu_sec, 0.0);
}

}  // namespace
}  // namespace labflow
