// Fault-injection tests for the group-commit WAL.
//
// The durability contract under test: whatever a crash leaves on disk,
// ReadAll must recover an exact *prefix* of the appended group sequence —
// never a torn group, never a reordered or resurrected suffix. The sweep
// below builds a WAL whose frames were coalesced by concurrent committers
// (so multi-frame batch writes are on disk), then truncates a copy of the
// file at EVERY byte offset and checks the prefix property at each one.
// Corruption tests flip header fields in place: a poisoned length must be
// bounded against the file (not trusted to size an allocation), and the
// checksum must cover the header so a flipped txn id or length bit ends the
// scan instead of replaying garbage.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "ostore/wal.h"
#include "tests/test_util.h"

namespace labflow::ostore {
namespace {

using test::TempDir;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

constexpr size_t kHeaderBytes = 16;
constexpr size_t kChecksumBytes = 4;

size_t FrameBytes(size_t payload_len) {
  return kHeaderBytes + payload_len + kChecksumBytes;
}

/// Appends groups from several threads with a generous leader grace window
/// until the stats prove at least one multi-frame coalesced write landed.
/// Returns the total number of groups appended.
size_t BuildBatchedWal(Wal* wal) {
  constexpr int kThreads = 4;
  constexpr int kFramesPerRound = 3;
  wal->SetGroupLimits(1 << 20, /*max_group_wait_us=*/20000);
  size_t appended = 0;
  // Each round starts all threads together so they pile into one leader's
  // window; coalescing is overwhelmingly likely per round, but keep trying
  // for a bounded number of rounds before declaring the setup broken.
  for (int round = 0; round < 50; ++round) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kFramesPerRound; ++i) {
          uint64_t txn = static_cast<uint64_t>(round * 1000 + t * 100 + i);
          std::string payload =
              "r" + std::to_string(round) + "t" + std::to_string(t) + "i" +
              std::to_string(i) + std::string(1 + (t * 7 + i) % 23, 'p');
          ASSERT_TRUE(wal->AppendGroup(txn, payload, /*sync=*/true).ok());
        }
      });
    }
    for (std::thread& w : workers) w.join();
    appended += kThreads * kFramesPerRound;
    if (wal->group_stats().max_frames_per_write >= 2) return appended;
  }
  ADD_FAILURE() << "no coalesced write after 50 rounds";
  return appended;
}

TEST(WalFaultTest, EveryTruncationYieldsCommittedPrefix) {
  TempDir dir;
  std::string path = dir.file("wal");
  size_t appended = 0;
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    appended = BuildBatchedWal(&wal);
    Wal::GroupStats stats = wal.group_stats();
    EXPECT_EQ(stats.frames, appended);
    EXPECT_LT(stats.writes, stats.frames) << "no write coalesced >1 frame";
    EXPECT_GE(stats.max_frames_per_write, 2u);
    ASSERT_TRUE(wal.Close().ok());
  }

  // Reference sequence: the intact file's group order (the serial order the
  // commit queue chose). Every truncation must recover a prefix of it.
  std::string bytes = ReadFileBytes(path);
  std::vector<Wal::Group> reference;
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    auto all = wal.ReadAll();
    ASSERT_TRUE(all.ok());
    reference = std::move(all).value();
    ASSERT_TRUE(wal.Close().ok());
  }
  ASSERT_EQ(reference.size(), appended) << "intact file lost groups";

  std::string copy = dir.file("wal_cut");
  size_t prev_recovered = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFileBytes(copy, std::string_view(bytes).substr(0, cut));
    Wal wal;
    ASSERT_TRUE(wal.Open(copy).ok());
    auto got = wal.ReadAll();
    ASSERT_TRUE(got.ok()) << "ReadAll failed at cut " << cut << ": "
                          << got.status().ToString();
    ASSERT_LE(got->size(), reference.size()) << "cut " << cut;
    for (size_t i = 0; i < got->size(); ++i) {
      ASSERT_EQ((*got)[i].txn_id, reference[i].txn_id)
          << "reordered group at cut " << cut << " index " << i;
      ASSERT_EQ((*got)[i].payload, reference[i].payload)
          << "torn group at cut " << cut << " index " << i;
    }
    // A longer prefix of the file can only recover more groups, never fewer.
    ASSERT_GE(got->size(), prev_recovered) << "cut " << cut;
    prev_recovered = got->size();
    ASSERT_TRUE(wal.Close().ok());
  }
  EXPECT_EQ(prev_recovered, reference.size())
      << "full-length copy must recover everything";
}

/// Writes a small deterministic WAL (single-threaded, known offsets) and
/// returns its group payloads in order.
std::vector<std::string> BuildPlainWal(const std::string& path) {
  std::vector<std::string> payloads = {"alpha ops", "bravo operations",
                                       "charlie"};
  Wal wal;
  EXPECT_TRUE(wal.Open(path).ok());
  uint64_t txn = 1;
  for (const std::string& p : payloads) {
    EXPECT_TRUE(wal.AppendGroup(txn++, p, false).ok());
  }
  EXPECT_TRUE(wal.Close().ok());
  return payloads;
}

void PatchByte(const std::string& path, size_t offset, unsigned char value) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fputc(value, f), value);
  std::fclose(f);
}

TEST(WalFaultTest, HugeCorruptLenIsBoundedNotAllocated) {
  TempDir dir;
  std::string path = dir.file("wal");
  std::vector<std::string> payloads = BuildPlainWal(path);
  // Poison the second frame's length field to ~4 GB. Before the bound, the
  // scanner would try to allocate and read 4 GB; now the length exceeds the
  // bytes the file still holds, so the scan must stop at a one-group prefix.
  size_t second = FrameBytes(payloads[0].size());
  PatchByte(path, second + 4, 0xFF);
  PatchByte(path, second + 5, 0xFF);
  PatchByte(path, second + 6, 0xFF);
  PatchByte(path, second + 7, 0xFF);

  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  auto groups = wal.ReadAll();
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 1u);
  EXPECT_EQ((*groups)[0].payload, payloads[0]);
  ASSERT_TRUE(wal.Close().ok());
}

TEST(WalFaultTest, SmallCorruptLenFailsHeaderChecksum) {
  TempDir dir;
  std::string path = dir.file("wal");
  std::vector<std::string> payloads = BuildPlainWal(path);
  // Shrink the second frame's length by one: the payload+checksum still fit
  // inside the file, so only a checksum that covers the header catches it.
  size_t second = FrameBytes(payloads[0].size());
  ASSERT_GT(payloads[1].size(), 1u);
  PatchByte(path, second + 4,
            static_cast<unsigned char>(payloads[1].size() - 1));

  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  auto groups = wal.ReadAll();
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 1u) << "corrupt length must end the scan";
  EXPECT_EQ((*groups)[0].payload, payloads[0]);
  ASSERT_TRUE(wal.Close().ok());
}

TEST(WalFaultTest, CorruptTxnIdFailsHeaderChecksum) {
  TempDir dir;
  std::string path = dir.file("wal");
  std::vector<std::string> payloads = BuildPlainWal(path);
  // Flip a bit in the second frame's txn id (header bytes 8..16). The
  // payload is untouched, so only header coverage can reject the frame.
  size_t second = FrameBytes(payloads[0].size());
  PatchByte(path, second + 10, 0xA5);

  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  auto groups = wal.ReadAll();
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 1u) << "corrupt txn id must end the scan";
  ASSERT_TRUE(wal.Close().ok());
}

TEST(WalFaultTest, CorruptMagicEndsScan) {
  TempDir dir;
  std::string path = dir.file("wal");
  std::vector<std::string> payloads = BuildPlainWal(path);
  size_t third =
      FrameBytes(payloads[0].size()) + FrameBytes(payloads[1].size());
  PatchByte(path, third, 0x00);

  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  auto groups = wal.ReadAll();
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 2u);
  ASSERT_TRUE(wal.Close().ok());
}

}  // namespace
}  // namespace labflow::ostore
