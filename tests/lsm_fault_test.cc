// LSM crash-recovery torture, driven through FaultInjectionEnv.
//
// The durability contract under test, from the outside:
//
//   * with sync_commit, a commit acknowledged OK survives any later power
//     cut — whether the data was still in the WAL, mid-flush, or already
//     compacted (the WAL for a memtable is retired only after its SSTable
//     and the manifest referencing it are synced);
//   * a commit reported failed leaves no trace after a crash;
//   * a crash between an SSTable write and its manifest install leaves an
//     orphan file; recovery garbage-collects it and answers stay exact;
//   * at-rest bit rot in an SSTable is *detected* (Corruption), never
//     returned as data.
//
// Seed sweep width follows storage_fault_test: LABFLOW_FAULT_SEEDS
// (default 16); scripts/check.sh's `fault` phase widens it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lsm/lsm_manager.h"
#include "storage/fault_env.h"
#include "tests/test_util.h"

namespace labflow::lsm {
namespace {

using storage::AllocHint;
using storage::FaultInjectionEnv;
using storage::ObjectId;
using test::TempDir;

std::vector<int> FaultSeeds() {
  int n = 16;
  if (const char* e = std::getenv("LABFLOW_FAULT_SEEDS")) {
    n = std::atoi(e);
    if (n < 1) n = 1;
  }
  std::vector<int> seeds;
  for (int i = 1; i <= n; ++i) seeds.push_back(i);
  return seeds;
}

/// Tiny thresholds so ~100 commits cross every boundary: several memtable
/// rotations, background flushes, and at least one compaction.
LsmOptions TinyOptions(const std::string& path, storage::Env* env) {
  LsmOptions opts;
  opts.path = path;
  opts.env = env;
  opts.sync_commit = true;  // every ack is a durability promise
  opts.memtable_bytes = 4 << 10;
  opts.l0_compact_trigger = 2;
  opts.l0_slowdown_trigger = 4;
  opts.l0_stop_trigger = 8;
  opts.level_base_bytes = 16 << 10;
  opts.target_file_bytes = 8 << 10;
  return opts;
}

// ---- Scenario A: random I/O faults across the whole tree, then crash -------

class LsmFaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(LsmFaultSweep, AckedCommitsSurviveCrashFailedOnesVanish) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  TempDir dir;

  FaultInjectionEnv::Options fopt;
  fopt.seed = seed;
  fopt.write_fault_p = 0.05;
  fopt.sync_fault_p = 0.05;
  fopt.torn_writes = true;
  FaultInjectionEnv env(fopt);

  LsmOptions opts = TinyOptions(dir.file("db"), &env);
  // Open under a clean disk (bootstrap writes the first manifest).
  env.set_enabled(false);
  auto mgr_or = LsmManager::Open(opts);
  ASSERT_TRUE(mgr_or.ok()) << mgr_or.status().ToString();
  std::unique_ptr<LsmManager> mgr = std::move(mgr_or).value();
  env.set_enabled(true);

  Rng rng(seed * 7 + 1);
  std::map<uint64_t, std::string> confirmed;  // ack'd commits: must survive
  int failed_commits = 0;

  for (int t = 0; t < 120; ++t) {
    auto txn_or = mgr->Begin();
    ASSERT_TRUE(txn_or.ok());
    storage::Txn* txn = txn_or.value();
    std::map<uint64_t, std::string> pending;
    Status st = Status::OK();
    int ops = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < ops && st.ok(); ++i) {
      std::string data = rng.NextName(1 + rng.NextBelow(500));
      auto id = mgr->Allocate(txn, data, AllocHint{});
      st = id.status();
      if (st.ok()) pending[id.value().raw] = data;
    }
    if (st.ok()) {
      st = mgr->Commit(txn);
      if (st.ok()) {
        confirmed.insert(pending.begin(), pending.end());
        continue;
      }
    } else {
      ASSERT_TRUE(mgr->Abort(txn).ok());
    }
    // A WAL fault degraded the store (failed commits roll back; later
    // writes refuse). The operator action that restores service is a
    // checkpoint over a now-healthy disk.
    ++failed_commits;
    env.set_enabled(false);
    ASSERT_TRUE(mgr->Checkpoint().ok())
        << "checkpoint after WAL failure (seed " << seed << ")";
    env.set_enabled(true);
  }

  // Power cut: everything the env never synced vanishes.
  mgr->SimulateCrash();
  mgr.reset();
  env.DropUnsynced();
  env.set_enabled(false);

  opts.truncate = false;
  auto rec_or = LsmManager::Open(opts);
  ASSERT_TRUE(rec_or.ok()) << "recovery failed (seed " << seed
                           << "): " << rec_or.status().ToString();
  std::unique_ptr<LsmManager> rec = std::move(rec_or).value();

  // Every acknowledged commit, byte for byte.
  for (const auto& [raw, data] : confirmed) {
    auto back = rec->Read(ObjectId(raw));
    ASSERT_TRUE(back.ok()) << "lost committed object " << raw << " (seed "
                           << seed << ", " << failed_commits
                           << " failed commits): " << back.status().ToString();
    ASSERT_EQ(back.value(), data) << "corrupt object " << raw;
  }
  // And nothing else: no ghost resurrected from a torn or unsynced group.
  uint64_t live = 0;
  ASSERT_TRUE(rec->ScanAll([&](ObjectId id, std::string_view data) {
                   auto it = confirmed.find(id.raw);
                   EXPECT_NE(it, confirmed.end())
                       << "ghost object " << id.raw << " (seed " << seed
                       << ")";
                   if (it != confirmed.end()) {
                     EXPECT_EQ(std::string(data), it->second);
                   }
                   ++live;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(live, confirmed.size());

  // The survivor is a fully usable database.
  auto post = rec->Begin();
  ASSERT_TRUE(post.ok());
  auto id = rec->Allocate(post.value(), "post-fault", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(rec->Commit(post.value()).ok());
  EXPECT_EQ(rec->Read(id.value()).value(), "post-fault");
  ASSERT_TRUE(rec->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmFaultSweep,
                         ::testing::ValuesIn(FaultSeeds()),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

// ---- Scenario B: clean power cut mid-pipeline -------------------------------

TEST(LsmFaultTest, PowerCutAcrossFlushBoundariesReplaysExactly) {
  TempDir dir;
  FaultInjectionEnv env(FaultInjectionEnv::Options{});  // no faults; crash only
  LsmOptions opts = TinyOptions(dir.file("db"), &env);

  std::map<uint64_t, std::string> confirmed;
  {
    auto mgr = LsmManager::Open(opts).value();
    Rng rng(21);
    // Enough volume that at crash time some commits live in flushed
    // SSTables, some in immutable memtables, some only in the active WAL.
    for (int i = 0; i < 250; ++i) {
      std::string data = rng.NextName(100 + rng.NextBelow(200));
      auto id = mgr->Allocate(data, AllocHint{});
      ASSERT_TRUE(id.ok());
      confirmed[id.value().raw] = data;
      if (i % 5 == 0 && !confirmed.empty()) {
        auto victim = confirmed.begin()->first;
        ASSERT_TRUE(mgr->Free(ObjectId(victim)).ok());
        confirmed.erase(victim);
      }
    }
    mgr->SimulateCrash();  // no checkpoint, no clean close
  }
  env.DropUnsynced();

  opts.truncate = false;
  auto rec = LsmManager::Open(opts).value();
  std::map<uint64_t, std::string> scanned;
  ASSERT_TRUE(rec->ScanAll([&](ObjectId id, std::string_view data) {
                   scanned[id.raw] = std::string(data);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(scanned, confirmed);
  ASSERT_TRUE(rec->Close().ok());
}

// ---- Scenario C: orphan SSTable from a crash mid-transition -----------------

TEST(LsmFaultTest, OrphanSstableIsCollectedOnRecovery) {
  TempDir dir;
  FaultInjectionEnv env(FaultInjectionEnv::Options{});
  LsmOptions opts = TinyOptions(dir.file("db"), &env);

  std::map<uint64_t, std::string> confirmed;
  uint64_t max_number = 0;
  {
    auto mgr = LsmManager::Open(opts).value();
    Rng rng(31);
    for (int i = 0; i < 250; ++i) {
      std::string data = rng.NextName(150);
      auto id = mgr->Allocate(data, AllocHint{});
      ASSERT_TRUE(id.ok());
      confirmed[id.value().raw] = data;
    }
    ASSERT_TRUE(mgr->Checkpoint().ok());
    ASSERT_TRUE(mgr->Close().ok());
  }
  // Compaction retired input tables, so some file numbers below the
  // high-water mark have no file. Plant a stray "SSTable" at one of them —
  // exactly what a crash after WriteMemtableSst but before the manifest
  // install leaves behind.
  auto sst_path = [&](uint64_t n) {
    return dir.file("db") + ".lsm-sst." + std::to_string(n);
  };
  for (uint64_t n = 1; n < 512; ++n) {
    if (env.FileExists(sst_path(n))) max_number = n;
  }
  ASSERT_GT(max_number, 0u) << "expected flushed SSTables on disk";
  uint64_t hole = 0;
  for (uint64_t n = 1; n < max_number; ++n) {
    if (!env.FileExists(sst_path(n))) {
      hole = n;
      break;
    }
  }
  ASSERT_GT(hole, 0u) << "expected a retired file number below " << max_number;
  {
    auto f = env.OpenFile(sst_path(hole), /*truncate=*/true).value();
    ASSERT_TRUE(f->Append("orphan bytes never referenced").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  ASSERT_TRUE(env.FileExists(sst_path(hole)));

  opts.truncate = false;
  auto rec = LsmManager::Open(opts).value();
  // Recovery deleted the orphan and kept every answer.
  EXPECT_FALSE(env.FileExists(sst_path(hole)));
  std::map<uint64_t, std::string> scanned;
  ASSERT_TRUE(rec->ScanAll([&](ObjectId id, std::string_view data) {
                   scanned[id.raw] = std::string(data);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(scanned, confirmed);
  ASSERT_TRUE(rec->Close().ok());
}

// ---- Scenario D: at-rest bit rot is detected, never silent ------------------

TEST(LsmFaultTest, BitRotInSstableIsDetectedNotReturned) {
  TempDir dir;
  FaultInjectionEnv env(FaultInjectionEnv::Options{});
  LsmOptions opts = TinyOptions(dir.file("db"), &env);

  std::map<uint64_t, std::string> confirmed;
  {
    auto mgr = LsmManager::Open(opts).value();
    Rng rng(41);
    for (int i = 0; i < 200; ++i) {
      std::string data = rng.NextName(150);
      auto id = mgr->Allocate(data, AllocHint{});
      ASSERT_TRUE(id.ok());
      confirmed[id.value().raw] = data;
    }
    ASSERT_TRUE(mgr->Checkpoint().ok());
    ASSERT_TRUE(mgr->Close().ok());
  }
  // Flip one bit in the middle of every SSTable on disk.
  int corrupted = 0;
  for (uint64_t n = 1; n < 512; ++n) {
    std::string path = dir.file("db") + ".lsm-sst." + std::to_string(n);
    if (!env.FileExists(path)) continue;
    auto f = env.OpenFile(path, /*truncate=*/false).value();
    uint64_t size = f->Size().value();
    ASSERT_TRUE(f->Close().ok());
    ASSERT_TRUE(env.CorruptByte(path, size / 2).ok());
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);

  opts.truncate = false;
  auto rec_or = LsmManager::Open(opts);
  if (!rec_or.ok()) {
    // Detected during recovery's tree walk.
    EXPECT_TRUE(rec_or.status().IsCorruption()) << rec_or.status().ToString();
    return;
  }
  auto rec = std::move(rec_or).value();
  for (const auto& [raw, data] : confirmed) {
    auto back = rec->Read(ObjectId(raw));
    if (back.ok()) {
      EXPECT_EQ(back.value(), data) << "silent corruption on " << raw;
    } else {
      EXPECT_TRUE(back.status().IsCorruption()) << back.status().ToString();
    }
  }
  ASSERT_TRUE(rec->Close().ok());
}

}  // namespace
}  // namespace labflow::lsm
