// Crash-recovery property sweep for the OStore manager.
//
// A shadow model executes random transactions alongside the real manager;
// at a random point the process "crashes" (SimulateCrash: buffered pages
// vanish, the WAL survives). After reopening, the database must equal the
// shadow state at the last *committed* transaction: committed effects are
// durable, uncommitted and aborted effects leave no trace.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ostore/ostore_manager.h"
#include "storage/fault_env.h"
#include "tests/test_util.h"

namespace labflow::ostore {
namespace {

using storage::AllocHint;
using storage::ObjectId;
using test::TempDir;

/// Parametrized over (rng seed, sync_commit). The sync variant drives every
/// commit through the group-commit queue's force path, so replay is checked
/// against WALs produced by the batched writer as well as the buffered one.
class RecoveryPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(RecoveryPropertyTest, CommittedPrefixSurvivesCrash) {
  uint64_t seed = static_cast<uint64_t>(std::get<0>(GetParam()));
  Rng rng(seed);
  TempDir dir;

  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.buffer_pool_pages = 64;  // small: force evictions mid-run
  opts.base.truncate = true;
  opts.sync_commit = std::get<1>(GetParam());
  auto mgr_or = OstoreManager::Open(opts);
  ASSERT_TRUE(mgr_or.ok());
  std::unique_ptr<OstoreManager> mgr = std::move(mgr_or).value();

  // committed shadow state; updated only at commit.
  std::map<uint64_t, std::string> committed;
  int total_txns = 30 + static_cast<int>(rng.NextBelow(40));
  int crash_after = static_cast<int>(rng.NextBelow(total_txns));
  bool checkpointed_once = false;

  for (int t = 0; t < total_txns; ++t) {
    if (t == crash_after) break;
    // Occasionally checkpoint mid-stream (recovery then spans a checkpoint).
    if (!checkpointed_once && t > total_txns / 3 && rng.NextBool(0.3)) {
      ASSERT_TRUE(mgr->Checkpoint().ok());
      checkpointed_once = true;
    }
    auto txn_or = mgr->Begin();
    ASSERT_TRUE(txn_or.ok());
    storage::Txn* txn = txn_or.value();
    std::map<uint64_t, std::string> pending = committed;
    int ops = 1 + static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < ops; ++i) {
      int action = static_cast<int>(rng.NextBelow(10));
      if (action < 5 || pending.empty()) {
        std::string data = rng.NextName(1 + rng.NextBelow(600));
        auto id = mgr->Allocate(txn, data, AllocHint{});
        ASSERT_TRUE(id.ok());
        pending[id.value().raw] = data;
      } else if (action < 8) {
        auto it = pending.begin();
        std::advance(it, rng.NextBelow(pending.size()));
        std::string data = rng.NextName(1 + rng.NextBelow(1500));
        ASSERT_TRUE(mgr->Update(txn, ObjectId(it->first), data).ok());
        it->second = data;
      } else {
        auto it = pending.begin();
        std::advance(it, rng.NextBelow(pending.size()));
        ASSERT_TRUE(mgr->Free(txn, ObjectId(it->first)).ok());
        pending.erase(it);
      }
    }
    if (rng.NextBool(0.2)) {
      ASSERT_TRUE(mgr->Abort(txn).ok());  // pending discarded
    } else {
      ASSERT_TRUE(mgr->Commit(txn).ok());
      committed = std::move(pending);
    }
  }

  ASSERT_TRUE(mgr->SimulateCrash().ok());
  mgr.reset();

  // Reopen: recovery replays the WAL over the checkpointed image.
  opts.base.truncate = false;
  auto recovered_or = OstoreManager::Open(opts);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  std::unique_ptr<OstoreManager> recovered = std::move(recovered_or).value();

  for (const auto& [raw, data] : committed) {
    auto back = recovered->Read(ObjectId(raw));
    ASSERT_TRUE(back.ok()) << "lost committed object " << raw << ": "
                           << back.status().ToString() << " (seed " << seed
                           << ")";
    ASSERT_EQ(back.value(), data) << "corrupt object " << raw << " (seed "
                                  << seed << ")";
  }
  // No extra objects resurrected from aborted/uncommitted work. Freed slots
  // may be reused by later committed allocations, so equality of the whole
  // live set is exactly what we check.
  uint64_t live = 0;
  ASSERT_TRUE(recovered
                  ->ScanAll([&](ObjectId id, std::string_view data) {
                    auto it = committed.find(id.raw);
                    EXPECT_NE(it, committed.end())
                        << "phantom object " << id.raw << " (seed " << seed
                        << ")";
                    if (it != committed.end()) {
                      EXPECT_EQ(std::string(data), it->second);
                    }
                    ++live;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(live, committed.size());

  // The recovered database must remain fully usable.
  auto post_txn = recovered->Begin();
  ASSERT_TRUE(post_txn.ok());
  auto id = recovered->Allocate(post_txn.value(), "post-recovery", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(recovered->Commit(post_txn.value()).ok());
  EXPECT_EQ(recovered->Read(id.value()).value(), "post-recovery");
  ASSERT_TRUE(recovered->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RecoveryPropertyTest,
    ::testing::Combine(::testing::Range(1, 21), ::testing::Values(false)),
    [](const auto& info) {
      return "Seed" + std::to_string(std::get<0>(info.param));
    });

// Fewer seeds for the force-at-commit variant: each commit pays an
// fdatasync, so the sweep is disk-bound.
INSTANTIATE_TEST_SUITE_P(
    SyncCommitSeeds, RecoveryPropertyTest,
    ::testing::Combine(::testing::Range(1, 8), ::testing::Values(true)),
    [](const auto& info) {
      return "Seed" + std::to_string(std::get<0>(info.param));
    });

// Bit rot on the real filesystem: flip one byte of a page on disk between
// close and reopen. The page checksum must turn the flip into a Corruption
// error — never into silently wrong data. (tests/storage_fault_test.cc
// covers the same property through FaultInjectionEnv; this variant goes
// through the default PosixEnv and an actual file.)
TEST(RecoveryCorruptionTest, FlippedByteOnDiskIsDetected) {
  TempDir dir;
  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.truncate = true;
  ObjectId id;
  {
    auto mgr = OstoreManager::Open(opts).value();
    auto r = mgr->Allocate(std::string(3000, 'z'), AllocHint{});
    ASSERT_TRUE(r.ok());
    id = r.value();
    ASSERT_TRUE(mgr->Checkpoint().ok());
    ASSERT_TRUE(mgr->Close().ok());
  }

  // Flip one byte in page 1's record area (page 0 is the superblock).
  {
    std::fstream f(dir.file("db"),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const std::streamoff off = storage::kPageSize + 2000;
    f.seekg(off);
    char byte = 0;
    f.read(&byte, 1);
    ASSERT_TRUE(f.good());
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(off);
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
  }

  opts.base.truncate = false;
  auto rec_or = OstoreManager::Open(opts);
  if (!rec_or.ok()) {
    EXPECT_TRUE(rec_or.status().IsCorruption()) << rec_or.status().ToString();
    return;
  }
  auto rec = std::move(rec_or).value();
  auto back = rec->Read(id);
  ASSERT_FALSE(back.ok()) << "flipped byte went undetected";
  EXPECT_TRUE(back.status().IsCorruption()) << back.status().ToString();
  EXPECT_GE(rec->stats().checksum_failures, 1u);
  ASSERT_TRUE(rec->Close().ok());
}

// ---- MVCC state across power cuts ------------------------------------------
//
// Snapshot transactions read at commit timestamps, so recovery must rebuild
// the commit-timestamp high-water mark (a reopened database that restarted
// its allocator at zero would stamp new commits *below* surviving data,
// making old snapshots see the future). And a post-recovery snapshot must
// expose exactly the committed survivors — never versions from the
// transaction that was still open at the power cut.
TEST(SnapshotRecoveryTest, CommitTsHwmAndSnapshotsSurvivePowerCut) {
  for (int seed = 1; seed <= 4; ++seed) {
    storage::FaultInjectionEnv::Options fopt;
    fopt.seed = static_cast<uint64_t>(seed);
    // No fault probabilities: a clean in-memory disk whose only failure is
    // the power cut itself (DropUnsynced below).
    storage::FaultInjectionEnv env(fopt);

    TempDir dir;
    OstoreOptions opts;
    opts.base.path = dir.file("db");
    opts.base.env = &env;
    opts.base.truncate = true;
    opts.sync_commit = true;  // every ack is durable; the cut loses nothing
    auto mgr_or = OstoreManager::Open(opts);
    ASSERT_TRUE(mgr_or.ok());
    std::unique_ptr<OstoreManager> mgr = std::move(mgr_or).value();
    ASSERT_TRUE(mgr->Checkpoint().ok());

    Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
    std::map<uint64_t, std::string> committed;
    int txns = 10 + static_cast<int>(rng.NextBelow(15));
    for (int t = 0; t < txns; ++t) {
      auto txn_or = mgr->Begin();
      ASSERT_TRUE(txn_or.ok());
      storage::Txn* txn = txn_or.value();
      std::map<uint64_t, std::string> pending = committed;
      int ops = 1 + static_cast<int>(rng.NextBelow(4));
      for (int i = 0; i < ops; ++i) {
        if (pending.empty() || rng.NextBool(0.6)) {
          std::string data = rng.NextName(1 + rng.NextBelow(400));
          auto id = mgr->Allocate(txn, data, AllocHint{});
          ASSERT_TRUE(id.ok());
          pending[id.value().raw] = data;
        } else {
          auto it = pending.begin();
          std::advance(it, rng.NextBelow(pending.size()));
          std::string data = rng.NextName(1 + rng.NextBelow(400));
          ASSERT_TRUE(mgr->Update(txn, ObjectId(it->first), data).ok());
          it->second = data;
        }
      }
      if (rng.NextBool(0.2)) {
        ASSERT_TRUE(mgr->Abort(txn).ok());
      } else {
        ASSERT_TRUE(mgr->Commit(txn).ok());
        committed = std::move(pending);
      }
    }
    uint64_t hwm_before = mgr->stats().commit_ts_hwm;
    ASSERT_GT(hwm_before, 0u) << "seed " << seed;

    // One transaction is still open — with fresh writes — when the power
    // goes out. Its versions must never become visible.
    auto open_txn = mgr->Begin();
    ASSERT_TRUE(open_txn.ok());
    std::vector<ObjectId> uncommitted_ids;
    for (int i = 0; i < 3; ++i) {
      auto id = mgr->Allocate(open_txn.value(), "uncommitted", AllocHint{});
      ASSERT_TRUE(id.ok());
      uncommitted_ids.push_back(id.value());
    }

    ASSERT_TRUE(mgr->SimulateCrash().ok());
    mgr.reset();
    env.DropUnsynced();
    env.set_enabled(false);

    opts.base.truncate = false;
    auto rec_or = OstoreManager::Open(opts);
    ASSERT_TRUE(rec_or.ok()) << rec_or.status().ToString();
    std::unique_ptr<OstoreManager> rec = std::move(rec_or).value();

    // Recovery rebuilt the commit-timestamp allocator at (or past) the
    // pre-crash high-water mark.
    EXPECT_GE(rec->stats().commit_ts_hwm, hwm_before) << "seed " << seed;

    // A post-recovery snapshot sees exactly the committed survivors.
    auto snap_or = rec->Begin(/*snapshot=*/true);
    ASSERT_TRUE(snap_or.ok());
    ASSERT_TRUE(snap_or.value()->is_snapshot());
    uint64_t live = 0;
    ASSERT_TRUE(rec->ScanAll(snap_or.value(),
                             [&](ObjectId id, std::string_view data) {
                               auto it = committed.find(id.raw);
                               EXPECT_NE(it, committed.end())
                                   << "snapshot exposed uncommitted object "
                                   << id.raw << " (seed " << seed << ")";
                               if (it != committed.end()) {
                                 EXPECT_EQ(std::string(data), it->second);
                               }
                               ++live;
                               return Status::OK();
                             })
                    .ok());
    EXPECT_EQ(live, committed.size()) << "seed " << seed;
    for (ObjectId id : uncommitted_ids) {
      auto r = rec->Read(snap_or.value(), id);
      EXPECT_FALSE(r.ok())
          << "snapshot read resurrected uncommitted object " << id.raw
          << " (seed " << seed << ")";
    }
    ASSERT_TRUE(rec->Commit(snap_or.value()).ok());

    // New commits stamp strictly above the recovered mark, so pre-crash
    // and post-crash history stay ordered.
    auto post = rec->Begin();
    ASSERT_TRUE(post.ok());
    ASSERT_TRUE(rec->Allocate(post.value(), "post-cut", AllocHint{}).ok());
    ASSERT_TRUE(rec->Commit(post.value()).ok());
    EXPECT_GT(rec->stats().commit_ts_hwm, hwm_before) << "seed " << seed;
    ASSERT_TRUE(rec->Close().ok());
  }
}

TEST(RecoveryDoubleCrashTest, RecoveryIsIdempotent) {
  TempDir dir;
  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.truncate = true;
  ObjectId id;
  {
    auto mgr = OstoreManager::Open(opts).value();
    auto txn = mgr->Begin();
    ASSERT_TRUE(txn.ok());
    auto r = mgr->Allocate(txn.value(), "survives twice", AllocHint{});
    ASSERT_TRUE(r.ok());
    id = r.value();
    ASSERT_TRUE(mgr->Commit(txn.value()).ok());
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }
  opts.base.truncate = false;
  {
    // First recovery, then crash again immediately (before checkpoint).
    auto mgr = OstoreManager::Open(opts).value();
    EXPECT_EQ(mgr->Read(id).value(), "survives twice");
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }
  auto mgr = OstoreManager::Open(opts).value();
  EXPECT_EQ(mgr->Read(id).value(), "survives twice");
  ASSERT_TRUE(mgr->Close().ok());
}

}  // namespace
}  // namespace labflow::ostore
