#include "labflow/driver.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "labflow/apply.h"
#include "labflow/generator.h"
#include "labflow/report.h"
#include "tests/test_util.h"

namespace labflow::bench {
namespace {

using test::TempDir;

WorkloadParams TinyParams(double intvl = 1.0) {
  WorkloadParams p;
  p.base_clones = 6;
  p.intvl = intvl;
  p.seed = 42;
  return p;
}

TEST(GeneratorTest, StreamIsDeterministic) {
  WorkloadParams p = TinyParams();
  WorkloadGenerator g1(p), g2(p);
  Event a, b;
  int events = 0;
  while (true) {
    bool more1 = g1.Next(&a);
    bool more2 = g2.Next(&b);
    ASSERT_EQ(more1, more2);
    if (!more1) break;
    ++events;
    ASSERT_EQ(static_cast<int>(a.type), static_cast<int>(b.type));
    ASSERT_EQ(a.name, b.name);
    ASSERT_EQ(a.step_class, b.step_class);
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.effects.size(), b.effects.size());
    for (size_t i = 0; i < a.effects.size(); ++i) {
      ASSERT_EQ(a.effects[i].material, b.effects[i].material);
      ASSERT_EQ(a.effects[i].new_state, b.effects[i].new_state);
      ASSERT_EQ(a.effects[i].tags.size(), b.effects[i].tags.size());
      for (size_t t = 0; t < a.effects[i].tags.size(); ++t) {
        ASSERT_EQ(a.effects[i].tags[t].attr, b.effects[i].tags[t].attr);
        ASSERT_TRUE(a.effects[i].tags[t].value == b.effects[i].tags[t].value);
      }
    }
  }
  EXPECT_GT(events, 100);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  WorkloadParams p1 = TinyParams(), p2 = TinyParams();
  p2.seed = 777;
  WorkloadGenerator g1(p1), g2(p2);
  Event a, b;
  bool differ = false;
  for (int i = 0; i < 50; ++i) {
    if (!g1.Next(&a) || !g2.Next(&b)) break;
    if (a.name != b.name || a.time != b.time) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorTest, EveryMaterialIsCreatedBeforeUse) {
  WorkloadGenerator gen(TinyParams());
  Event ev;
  std::set<std::string> created;
  std::set<std::string> sets;
  while (gen.Next(&ev)) {
    switch (ev.type) {
      case Event::Type::kCreateMaterial:
        EXPECT_EQ(created.count(ev.name), 0u) << "duplicate " << ev.name;
        created.insert(ev.name);
        break;
      case Event::Type::kRecordStep:
        for (const EffectSpec& e : ev.effects) {
          EXPECT_EQ(created.count(e.material), 1u)
              << "step on unknown material " << e.material;
        }
        break;
      case Event::Type::kCreateSet:
        sets.insert(ev.name);
        break;
      case Event::Type::kAddSetMembers:
        EXPECT_EQ(sets.count(ev.name), 1u);
        for (const std::string& m : ev.members) {
          EXPECT_EQ(created.count(m), 1u);
        }
        break;
      default:
        break;
    }
  }
  EXPECT_GT(created.size(), 20u);
}

TEST(GeneratorTest, ScaleMultipliesWork) {
  WorkloadParams small = TinyParams(1.0);
  WorkloadParams big = TinyParams(3.0);
  WorkloadGenerator gs(small), gb(big);
  Event ev;
  while (gs.Next(&ev)) {
  }
  while (gb.Next(&ev)) {
  }
  EXPECT_GT(gb.totals().steps, 2 * gs.totals().steps);
  EXPECT_GT(gb.totals().materials, 2 * gs.totals().materials);
}

TEST(GeneratorTest, StreamContainsEvolutionAndQueries) {
  WorkloadParams p = TinyParams();
  p.base_clones = 20;
  WorkloadGenerator gen(p);
  Event ev;
  std::map<std::string, size_t> evolved;
  while (gen.Next(&ev)) {
    if (ev.type == Event::Type::kEvolveStepClass) {
      evolved[ev.step_class] = ev.attrs.size();
    }
  }
  EXPECT_EQ(gen.totals().evolutions, p.evolution_events);
  EXPECT_GT(gen.totals().queries, 0);
  EXPECT_GT(gen.totals().sets, 0);
  // The evolved attribute set must extend the original.
  ASSERT_TRUE(evolved.count("determine_sequence"));
  EXPECT_GT(evolved["determine_sequence"], 3u);
}

TEST(GeneratorTest, AllTclonesReachTerminalStates) {
  WorkloadParams p = TinyParams();
  WorkloadGenerator gen(p);
  Event ev;
  std::map<std::string, std::string> final_state;
  while (gen.Next(&ev)) {
    if (ev.type == Event::Type::kRecordStep) {
      for (const EffectSpec& e : ev.effects) {
        if (!e.new_state.empty()) final_state[e.material] = e.new_state;
      }
    }
  }
  int tclones = 0;
  for (const auto& [name, state] : final_state) {
    if (name.find("-tc") == std::string::npos) continue;
    ++tclones;
    EXPECT_TRUE(state == "tc_incorporated" || state == "tc_failed")
        << name << " ended in " << state;
  }
  EXPECT_GT(tclones, 10);
}

TEST(GeneratorTest, GelBatchesRespectGraphBounds) {
  WorkloadParams p = TinyParams();
  p.base_clones = 30;
  WorkloadGenerator gen(p);
  const workflow::Transition* load_gel =
      gen.graph().FindTransition("load_gel");
  ASSERT_NE(load_gel, nullptr);
  Event ev;
  int gels = 0;
  bool saw_full_batch = false;
  while (gen.Next(&ev)) {
    if (ev.type != Event::Type::kRecordStep || ev.step_class != "load_gel") {
      continue;
    }
    ++gels;
    // Batches never exceed the declared maximum; undersized batches are
    // only the end-of-stream flush.
    EXPECT_LE(static_cast<int>(ev.effects.size()), load_gel->batch_max);
    if (static_cast<int>(ev.effects.size()) >= load_gel->batch_min) {
      saw_full_batch = true;
    }
    // Lane numbers are 1..batch and unique.
    std::set<int64_t> lanes;
    for (const EffectSpec& e : ev.effects) {
      for (const TagSpec& t : e.tags) {
        if (t.attr == "lane") lanes.insert(t.value.int_value());
      }
    }
    EXPECT_EQ(lanes.size(), ev.effects.size());
  }
  EXPECT_GT(gels, 3);
  EXPECT_TRUE(saw_full_batch);
}

TEST(GeneratorTest, EvolvedAttributesAppearInLaterSteps) {
  WorkloadParams p = TinyParams();
  p.base_clones = 40;
  WorkloadGenerator gen(p);
  Event ev;
  std::map<std::string, std::set<std::string>> evolved_attrs;
  std::map<std::string, int> tagged_after_evolution;
  while (gen.Next(&ev)) {
    if (ev.type == Event::Type::kEvolveStepClass) {
      // Attribute set strictly grows.
      for (const std::string& a : ev.attrs) {
        evolved_attrs[ev.step_class].insert(a);
      }
    } else if (ev.type == Event::Type::kRecordStep &&
               evolved_attrs.count(ev.step_class)) {
      for (const EffectSpec& e : ev.effects) {
        for (const TagSpec& t : e.tags) {
          if (t.attr.find("_evo") != std::string::npos) {
            ++tagged_after_evolution[ev.step_class];
          }
        }
      }
    }
  }
  ASSERT_FALSE(evolved_attrs.empty());
  // At least one evolved class actually recorded steps carrying the new
  // attribute (the stream exercises the new schema version).
  int exercised = 0;
  for (const auto& [step, n] : tagged_after_evolution) {
    if (n > 0) ++exercised;
  }
  EXPECT_GT(exercised, 0);
}

TEST(GeneratorTest, ValidTimesMostlyMonotoneWithBoundedLateness) {
  WorkloadParams p = TinyParams();
  p.base_clones = 20;
  WorkloadGenerator gen(p);
  Event ev;
  int64_t max_seen = 0;
  int64_t steps = 0, late = 0;
  while (gen.Next(&ev)) {
    if (ev.type != Event::Type::kRecordStep) continue;
    ++steps;
    if (ev.time.micros < max_seen) {
      ++late;
    } else {
      max_seen = ev.time.micros;
    }
    EXPECT_GT(ev.time.micros, 0);
  }
  ASSERT_GT(steps, 100);
  // Late entries exist (the paper's out-of-order requirement) but are the
  // exception, roughly the configured fraction.
  EXPECT_GT(late, 0);
  EXPECT_LT(static_cast<double>(late) / steps, 0.2);
}

class DriverTest : public ::testing::TestWithParam<ServerVersion> {};

TEST_P(DriverTest, RunsCleanAndConsistent) {
  TempDir dir;
  Driver::Options opts;
  opts.version = GetParam();
  opts.db_path = dir.file("db");
  opts.pool_pages = 512;
  auto report = Driver::Run(TinyParams(), opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->steps, 50);
  EXPECT_GT(report->queries, 0);
  EXPECT_GT(report->elapsed_sec, 0);
  EXPECT_NE(report->result_checksum, 0u);
  if (GetParam() != ServerVersion::kOstoreMm &&
      GetParam() != ServerVersion::kTexasMm) {
    EXPECT_GT(report->db_size_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, DriverTest,
    ::testing::Values(ServerVersion::kOstore, ServerVersion::kTexas,
                      ServerVersion::kTexasTC, ServerVersion::kOstoreMm,
                      ServerVersion::kTexasMm, ServerVersion::kLsm),
    [](const auto& info) {
      std::string name(ServerVersionName(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DriverCrossCheckTest, AllVersionsProduceIdenticalQueryResults) {
  // The headline internal-consistency property: every server version must
  // compute exactly the same answers over the identical stream. A checksum
  // mismatch means a storage manager corrupted or lost data.
  WorkloadParams params = TinyParams();
  params.base_clones = 10;
  std::set<uint64_t> checksums;
  std::map<std::string, int64_t> steps;
  for (ServerVersion v : kAllServerVersions) {
    TempDir dir;
    Driver::Options opts;
    opts.version = v;
    opts.db_path = dir.file("db");
    auto report = Driver::Run(params, opts);
    ASSERT_TRUE(report.ok())
        << ServerVersionName(v) << ": " << report.status().ToString();
    checksums.insert(report->result_checksum);
    steps[report->version] = report->steps;
  }
  EXPECT_EQ(checksums.size(), 1u)
      << "server versions disagreed on query results";
}

TEST(DriverTest, SmallBufferPoolForcesFaultsButStaysCorrect) {
  WorkloadParams params = TinyParams();
  params.base_clones = 12;
  uint64_t reference = 0;
  {
    TempDir dir;
    Driver::Options opts;
    opts.version = ServerVersion::kTexas;
    opts.db_path = dir.file("db");
    opts.pool_pages = 4096;
    auto big = Driver::Run(params, opts);
    ASSERT_TRUE(big.ok());
    reference = big->result_checksum;
  }
  TempDir dir;
  Driver::Options opts;
  opts.version = ServerVersion::kTexas;
  opts.db_path = dir.file("db");
  opts.pool_pages = 16;  // thrash
  auto small = Driver::Run(params, opts);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ(small->result_checksum, reference);
  EXPECT_GT(small->majflt, 0u);
}

TEST(DriverTest, LoadingOnlyModeSkipsQueries) {
  TempDir dir;
  Driver::Options opts;
  opts.version = ServerVersion::kTexasMm;
  opts.db_path = dir.file("db");
  opts.run_queries = false;
  auto report = Driver::Run(TinyParams(), opts);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->query_elapsed_sec, 0.0);
}

class MidStreamReopenTest : public ::testing::TestWithParam<ServerVersion> {};

TEST_P(MidStreamReopenTest, ContinuingAfterReopenMatchesUninterruptedRun) {
  // Load half the update stream, close the database, reopen it (schema and
  // indexes restored from storage), apply the rest — the final state must
  // match an uninterrupted run. Exercises LabBase reopening mid-workflow
  // with in-flight materials in every state.
  WorkloadParams params = TinyParams();
  params.base_clones = 10;

  // Reference: uninterrupted run, snapshotting per-state counts.
  std::map<std::string, int64_t> expected_counts;
  int64_t expected_steps = 0;
  {
    TempDir dir;
    auto mgr = test::MakeManager(
        GetParam() == ServerVersion::kOstore ? test::ManagerKind::kOstore
                                             : test::ManagerKind::kTexas,
        dir.file("db"));
    auto base = labbase::LabBase::Open(mgr.get(), labbase::LabBaseOptions{})
                    .value();
    auto db = base->OpenSession();
    WorkloadGenerator gen(params);
    ASSERT_TRUE(gen.graph().InstallSchema(db.get()).ok());
    Event ev;
    while (gen.Next(&ev)) {
      if (!ev.IsUpdate()) continue;
      ASSERT_TRUE(ApplyUpdate(db.get(), ev).ok());
      if (ev.type == Event::Type::kRecordStep) ++expected_steps;
    }
    for (const std::string& state : gen.graph().states) {
      auto id = db->schema().StateByName(state);
      if (id.ok()) {
        expected_counts[state] = db->CountInState(id.value()).value();
      }
    }
    ASSERT_TRUE(mgr->Close().ok());
  }

  // Interrupted run: close at the halfway point, reopen, continue.
  TempDir dir;
  auto kind = GetParam() == ServerVersion::kOstore
                  ? test::ManagerKind::kOstore
                  : test::ManagerKind::kTexas;
  WorkloadGenerator gen(params);
  Event ev;
  std::vector<Event> updates;
  while (gen.Next(&ev)) {
    if (ev.IsUpdate()) updates.push_back(ev);
  }
  size_t half = updates.size() / 2;
  {
    auto mgr = test::MakeManager(kind, dir.file("db"));
    auto base = labbase::LabBase::Open(mgr.get(), labbase::LabBaseOptions{})
                    .value();
    auto db = base->OpenSession();
    ASSERT_TRUE(gen.graph().InstallSchema(db.get()).ok());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(ApplyUpdate(db.get(), updates[i]).ok());
    }
    ASSERT_TRUE(mgr->Close().ok());
  }
  auto mgr = test::MakeManager(kind, dir.file("db"), 256, /*truncate=*/false);
  auto base =
      labbase::LabBase::Open(mgr.get(), labbase::LabBaseOptions{}).value();
  auto db = base->OpenSession();
  for (size_t i = half; i < updates.size(); ++i) {
    ASSERT_TRUE(ApplyUpdate(db.get(), updates[i]).ok())
        << "event " << i << " after reopen";
  }
  for (const auto& [state, count] : expected_counts) {
    auto id = db->schema().StateByName(state);
    ASSERT_TRUE(id.ok()) << state;
    EXPECT_EQ(db->CountInState(id.value()).value(), count) << state;
  }
  ASSERT_TRUE(mgr->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(DiskVersions, MidStreamReopenTest,
                         ::testing::Values(ServerVersion::kOstore,
                                           ServerVersion::kTexas),
                         [](const auto& info) {
                           std::string name(ServerVersionName(info.param));
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(ReportTest, CommasAndTableRender) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(16629760), "16,629,760");

  RunReport r;
  r.version = "OStore";
  r.intvl = 0.5;
  r.elapsed_sec = 1424;
  r.majflt = 329;
  r.db_size_bytes = 16629760;
  std::ostringstream os;
  PrintMainTable(os, {r});
  std::string table = os.str();
  EXPECT_NE(table.find("OStore"), std::string::npos);
  EXPECT_NE(table.find("0.5X"), std::string::npos);
  EXPECT_NE(table.find("16,629,760"), std::string::npos);
  EXPECT_NE(table.find("majflt"), std::string::npos);
}

}  // namespace
}  // namespace labflow::bench
