// Tests for the lock-rank hierarchy machinery (common/lock_rank.h,
// common/mutex.h): the runtime validator must abort — printing both
// acquisition stacks — when two ranks are taken out of order, and must stay
// silent for correct nesting, unranked locks, try-locks, non-LIFO release
// and condition-variable reacquisition. The validator is compiled in only
// when LABFLOW_LOCK_RANK_CHECKS is defined (Debug and sanitizer builds;
// scripts/check.sh lock-order); in release builds the whole suite is one
// documented skip so `ctest` stays green everywhere.

#include <gtest/gtest.h>

#include <thread>

#include "common/lock_rank.h"
#include "common/mutex.h"

namespace labflow {
namespace {

#ifdef LABFLOW_LOCK_RANK_CHECKS

TEST(LockRankDeathTest, InversionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex inner{LockRank::kBufferShard, "test.inner"};
  Mutex outer{LockRank::kTxnTable, "test.outer"};
  EXPECT_DEATH(
      {
        MutexLock hold_high(inner);
        MutexLock inverted(outer);  // kTxnTable < kBufferShard: wrong order
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, ReportNamesBothLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex inner{LockRank::kVersionChain, "test.chain"};
  Mutex outer{LockRank::kWalQueue, "test.wal"};
  // Both the held lock and the offending acquisition appear in the report,
  // with their ranks and acquisition sites.
  EXPECT_DEATH(
      {
        MutexLock hold_high(inner);
        MutexLock inverted(outer);
      },
      "test\\.chain");
  EXPECT_DEATH(
      {
        MutexLock hold_high(inner);
        MutexLock inverted(outer);
      },
      "test\\.wal");
  EXPECT_DEATH(
      {
        MutexLock hold_high(inner);
        MutexLock inverted(outer);
      },
      "acquired at");
}

TEST(LockRankDeathTest, EqualRanksMayNotNest) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two locks at one rank never nest (per-shard mutexes: one shard per
  // operation). The validator enforces the strict version.
  Mutex a{LockRank::kBufferShard, "test.shard_a"};
  Mutex b{LockRank::kBufferShard, "test.shard_b"};
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, RecursiveAcquireDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{LockRank::kTxnTable, "test.recursive"};
  EXPECT_DEATH(
      {
        MutexLock l1(mu);
        mu.Lock();  // same mutex again: deadlock in release, abort here
      },
      "acquired twice");
}

TEST(LockRankDeathTest, SharedAcquisitionIsCheckedToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex inner{LockRank::kFrameLatch, "test.latch"};
  Mutex outer{LockRank::kBufferShard, "test.shard"};
  EXPECT_DEATH(
      {
        ReaderMutexLock latch(inner);
        MutexLock shard(outer);  // shard rank below a held latch: inversion
      },
      "lock rank inversion");
}

TEST(LockRankTest, InOrderNestingIsFine) {
  Mutex outer{LockRank::kTxnTable, "test.outer"};
  Mutex mid{LockRank::kWalQueue, "test.mid"};
  SharedMutex inner{LockRank::kFrameLatch, "test.latch"};
  MutexLock a(outer);
  MutexLock b(mid);
  WriterMutexLock c(inner);
  SUCCEED();
}

TEST(LockRankTest, SequentialSameRankIsFine) {
  Mutex a{LockRank::kBufferShard, "test.shard_a"};
  Mutex b{LockRank::kBufferShard, "test.shard_b"};
  { MutexLock la(a); }
  { MutexLock lb(b); }
  SUCCEED();
}

TEST(LockRankTest, UnrankedLocksAreInvisible) {
  // Default-constructed (test/bench) mutexes opt out of validation: taking
  // one in any position never trips the checker.
  Mutex ranked{LockRank::kVersionChain, "test.ranked"};
  Mutex unranked;
  MutexLock a(ranked);
  MutexLock b(unranked);
  SUCCEED();
}

TEST(LockRankTest, NonLifoReleaseIsTracked) {
  // The WAL leader and the client reader release out of stack order
  // (explicit Lock/Unlock pairs); the validator pops by mutex pointer.
  Mutex low{LockRank::kTxnTable, "test.low"};
  Mutex high{LockRank::kBufferShard, "test.high"};
  low.Lock();
  high.Lock();
  low.Unlock();  // not LIFO
  // `high` must still be tracked: re-acquiring below it would die, but
  // acquiring above it is fine.
  Mutex higher{LockRank::kVersionCommit, "test.higher"};
  higher.Lock();
  higher.Unlock();
  high.Unlock();
  SUCCEED();
}

TEST(LockRankTest, TryLockSkipsTheOrderCheck) {
  // A non-blocking probe cannot deadlock, so TryLock is exempt from the
  // order check — BufferPool::LockShard probes against the order to count
  // contention. Holding a high rank and try-locking a low one is fine.
  Mutex high{LockRank::kBufferShard, "test.high"};
  Mutex low{LockRank::kTxnTable, "test.low"};
  MutexLock hold(high);
  ASSERT_TRUE(low.TryLock());
  low.Unlock();
  SUCCEED();
}

TEST(LockRankDeathTest, TryLockStillTracksTheHold) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A successful try-acquire IS pushed on the held stack: a later blocking
  // acquire at or below its rank dies like any other inversion.
  Mutex low{LockRank::kTxnTable, "test.try_low"};
  Mutex lower{LockRank::kSessionPool, "test.lower"};
  EXPECT_DEATH(
      {
        ASSERT_TRUE(low.TryLock());
        MutexLock inverted(lower);  // kSessionPool not above held kTxnTable
      },
      "lock rank inversion");
}

TEST(LockRankTest, CondVarWaitKeepsTracking) {
  // CondVar releases and reacquires through Mutex's BasicLockable
  // spellings, so the wait's transient release and reacquire are both
  // rank-tracked: after the wait the mutex is back on the held stack.
  Mutex mu{LockRank::kWalQueue, "test.cv_mu"};
  CondVar cv;
  bool flag = false;
  std::thread waker([&] {
    MutexLock l(mu);
    flag = true;
    cv.NotifyOne();
  });
  {
    MutexLock l(mu);
    cv.Wait(mu, [&] { return flag; });  // real park: release + reacquire
    // Acquiring a higher rank under the reacquired mutex still works…
    Mutex inner{LockRank::kVersionChain, "test.cv_inner"};
    MutexLock li(inner);
  }
  waker.join();
  SUCCEED();
}

#else  // !LABFLOW_LOCK_RANK_CHECKS

TEST(LockRankTest, ValidatorDisabledInThisBuild) {
  GTEST_SKIP() << "LABFLOW_LOCK_RANK_CHECKS is off (release build); the "
                  "lock-order phase of scripts/check.sh runs this suite "
                  "against a Debug build";
}

#endif  // LABFLOW_LOCK_RANK_CHECKS

TEST(LockRankTest, RankTableNamesAreStable) {
  // LockRankName is used in abort reports and docs; spot-check the table.
  EXPECT_STREQ(LockRankName(LockRank::kNetConnection), "NetConnection");
  EXPECT_STREQ(LockRankName(LockRank::kFrameLatch), "FrameLatch");
  EXPECT_STREQ(LockRankName(LockRank::kFaultEnv), "FaultEnv");
  EXPECT_STREQ(LockRankName(LockRank::kUnranked), "Unranked");
}

}  // namespace
}  // namespace labflow
