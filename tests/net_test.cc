/// Wire-protocol and client/server tests: codec roundtrips, frame
/// reassembly at every split offset, adversarial length prefixes, a live
/// loopback server (pipelining, out-of-order completion, backpressure),
/// and kill-the-server-mid-commit client recovery on a durable store.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "labbase/labbase.h"
#include "labflow/driver.h"
#include "labflow/server_version.h"
#include "mm/mm_manager.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "tests/test_util.h"

namespace labflow::net {
namespace {

using labbase::LabBase;
using test::TempDir;

// ---- Wire codec -------------------------------------------------------------

TEST(WireTest, PayloadHelpersRoundtrip) {
  Encoder e;
  EncodeOid(&e, Oid(42));
  EncodeTimestamp(&e, Timestamp(-123456789));
  EncodeOids(&e, {Oid(1), Oid(2), Oid(1ull << 40)});

  std::vector<labbase::HistoryEntry> hist;
  hist.push_back({Timestamp(10), Value::Int(7), Oid(100)});
  hist.push_back({Timestamp(20), Value::String("ACGT"), Oid(101)});
  EncodeHistoryEntries(&e, hist);

  labbase::MaterialInfo mat;
  mat.id = Oid(7);
  mat.class_id = 3;
  mat.name = "clone-7";
  mat.state = 2;
  mat.created = Timestamp(777);
  mat.attrs_present = {1, 4, 9};
  EncodeMaterialInfo(&e, mat);

  std::vector<labbase::StepEffect> effects;
  labbase::StepEffect eff;
  eff.material = Oid(7);
  eff.new_state = 5;
  eff.tags.push_back({2, Value::Real(1.5)});
  effects.push_back(eff);
  EncodeStepEffects(&e, effects);

  WireServerStats stats;
  stats.disk_reads = 1;
  stats.disk_writes = 2;
  stats.cache_hits = 3;
  stats.txn_commits = 4;
  stats.db_size_bytes = 5;
  stats.wal_bytes = 6;
  stats.lsm_memtable_bytes = 7;
  stats.lsm_level_files = {3, 1, 0, 2};
  stats.lsm_compaction_bytes_read = 8;
  stats.lsm_compaction_bytes_written = 9;
  stats.lsm_bloom_checks = 10;
  stats.lsm_bloom_hits = 11;
  stats.lsm_write_throttles = 12;
  EncodeServerStats(&e, stats);

  Decoder d(e.buffer());
  auto oid = DecodeOid(&d);
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(oid->raw, 42u);
  auto ts = DecodeTimestamp(&d);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->micros, -123456789);
  auto oids = DecodeOids(&d);
  ASSERT_TRUE(oids.ok());
  ASSERT_EQ(oids->size(), 3u);
  EXPECT_EQ((*oids)[2].raw, 1ull << 40);
  auto hist2 = DecodeHistoryEntries(&d);
  ASSERT_TRUE(hist2.ok());
  ASSERT_EQ(hist2->size(), 2u);
  EXPECT_EQ((*hist2)[1].value, Value::String("ACGT"));
  auto mat2 = DecodeMaterialInfo(&d);
  ASSERT_TRUE(mat2.ok());
  EXPECT_EQ(mat2->name, "clone-7");
  EXPECT_EQ(mat2->attrs_present, mat.attrs_present);
  auto eff2 = DecodeStepEffects(&d);
  ASSERT_TRUE(eff2.ok());
  ASSERT_EQ(eff2->size(), 1u);
  EXPECT_EQ((*eff2)[0].new_state, 5u);
  ASSERT_EQ((*eff2)[0].tags.size(), 1u);
  EXPECT_EQ((*eff2)[0].tags[0].value, Value::Real(1.5));
  auto stats2 = DecodeServerStats(&d);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->wal_bytes, 6u);
  EXPECT_EQ(stats2->lsm_memtable_bytes, 7u);
  EXPECT_EQ(stats2->lsm_level_files, (std::vector<uint64_t>{3, 1, 0, 2}));
  EXPECT_EQ(stats2->lsm_compaction_bytes_written, 9u);
  EXPECT_EQ(stats2->lsm_bloom_hits, 11u);
  EXPECT_EQ(stats2->lsm_write_throttles, 12u);
  EXPECT_TRUE(d.AtEnd());
}

TEST(WireTest, RequestAndResponseHeadersRoundtrip) {
  Encoder e;
  EncodeRequestHeader(&e, {987654321, Op::kRecordStep, 17});
  EncodeResponseHeader(&e, 987654321, Status::NotFound("no such material"));
  Decoder d(e.buffer());
  auto req = DecodeRequestHeader(&d);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->request_id, 987654321u);
  EXPECT_EQ(req->op, Op::kRecordStep);
  EXPECT_EQ(req->session_id, 17u);
  auto resp = DecodeResponseHeader(&d);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->request_id, 987654321u);
  EXPECT_TRUE(resp->status.IsNotFound());
  EXPECT_EQ(resp->status.message(), "no such material");
}

TEST(WireTest, UnknownOpcodeAndStatusCodeAreCorruption) {
  {
    Encoder e;
    e.PutU64(1);
    e.PutU8(200);  // not an opcode
    e.PutU64(0);
    Decoder d(e.buffer());
    EXPECT_TRUE(DecodeRequestHeader(&d).status().IsCorruption());
  }
  {
    Encoder e;
    e.PutU64(1);
    e.PutU8(250);  // not a status code
    e.PutString("");
    Decoder d(e.buffer());
    EXPECT_TRUE(DecodeResponseHeader(&d).status().IsCorruption());
  }
}

TEST(WireTest, FrameReaderReassemblesAtEverySplitOffset) {
  // Three frames — empty, small, multi-KB — concatenated, then delivered
  // as two chunks split at every possible byte offset. Every split must
  // produce exactly the same three payloads.
  std::vector<std::string> payloads = {"", "ping", std::string(3000, 'x')};
  std::string wire;
  for (const std::string& p : payloads) AppendFrame(&wire, p);

  for (size_t split = 0; split <= wire.size(); ++split) {
    FrameReader reader;
    reader.Append(std::string_view(wire).substr(0, split));
    std::vector<std::string> got;
    std::string frame;
    while (true) {
      auto r = reader.Next(&frame);
      ASSERT_TRUE(r.ok());
      if (!r.value()) break;
      got.push_back(frame);
    }
    reader.Append(std::string_view(wire).substr(split));
    while (true) {
      auto r = reader.Next(&frame);
      ASSERT_TRUE(r.ok());
      if (!r.value()) break;
      got.push_back(frame);
    }
    ASSERT_EQ(got, payloads) << "split at offset " << split;
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(WireTest, FrameReaderByteAtATime) {
  std::string wire;
  AppendFrame(&wire, "one byte at a time");
  FrameReader reader;
  std::string frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.Append(std::string_view(wire).substr(i, 1));
    auto r = reader.Next(&frame);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value()) << "complete after " << (i + 1) << " bytes";
  }
  reader.Append(std::string_view(wire).substr(wire.size() - 1, 1));
  auto r = reader.Next(&frame);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  EXPECT_EQ(frame, "one byte at a time");
}

TEST(WireTest, FrameReaderRejectsOversizedFrameAndStaysPoisoned) {
  FrameReader reader(/*max_frame_bytes=*/1024);
  Encoder len;
  len.PutU64(1u << 20);  // 1 MiB length prefix against a 1 KiB cap
  reader.Append(len.buffer());
  std::string frame;
  EXPECT_TRUE(reader.Next(&frame).status().IsCorruption());
  // Poisoned: even a now-valid frame is rejected — the stream has no
  // trustworthy boundary anymore.
  std::string wire;
  AppendFrame(&wire, "ok");
  reader.Append(wire);
  EXPECT_TRUE(reader.Next(&frame).status().IsCorruption());
}

TEST(WireTest, FrameReaderRejectsUnterminatedLengthPrefix) {
  FrameReader reader;
  reader.Append(std::string(6, static_cast<char>(0xFF)));
  std::string frame;
  EXPECT_TRUE(reader.Next(&frame).status().IsCorruption());
}

// ---- Live server ------------------------------------------------------------

/// In-process labflowd over loopback on a main-memory store.
class ServerFixture {
 public:
  explicit ServerFixture(ServerConfig config = {}) {
    mgr_ = std::make_unique<mm::MmManager>("net-test");
    db_ = std::move(LabBase::Open(mgr_.get(), {}).value());
    server_ = std::make_unique<Server>(db_.get(), mgr_.get(), config);
    Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  ~ServerFixture() {
    server_->Shutdown();
    server_.reset();
    db_.reset();
  }

  uint16_t port() const { return server_->port(); }
  Server* server() { return server_.get(); }

  std::unique_ptr<Connection> Connect() {
    auto conn = Connection::Dial("127.0.0.1", port());
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return std::move(conn.value());
  }

 private:
  std::unique_ptr<mm::MmManager> mgr_;
  std::unique_ptr<LabBase> db_;
  std::unique_ptr<Server> server_;
};

TEST(ServerTest, PingAndServerStats) {
  ServerFixture fx;
  std::unique_ptr<Connection> conn = fx.Connect();
  ASSERT_TRUE(conn->Ping().ok());
  auto stats = conn->ServerStats();
  ASSERT_TRUE(stats.ok());
}

TEST(ServerTest, RemoteSessionEndToEnd) {
  ServerFixture fx;
  std::unique_ptr<Connection> conn = fx.Connect();
  auto session_or = RemoteSession::Open(conn.get());
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  RemoteSession& s = *session_or.value();

  ASSERT_TRUE(s.RunTransaction([&]() -> Status {
    LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId mat_cls,
                             s.DefineMaterialClass("clone"));
    LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId step_cls,
                             s.DefineStepClass("measure", {"length"}));
    LABFLOW_ASSIGN_OR_RETURN(labbase::StateId fresh, s.DefineState("fresh"));
    LABFLOW_ASSIGN_OR_RETURN(labbase::StateId done, s.DefineState("done"));

    LABFLOW_ASSIGN_OR_RETURN(
        Oid m, s.CreateMaterial(mat_cls, "clone-1", fresh, Timestamp(100)));
    LABFLOW_ASSIGN_OR_RETURN(labbase::AttrId len_attr,
                             s.schema().AttributeByName("length"));
    labbase::StepEffect eff;
    eff.material = m;
    eff.tags.push_back({len_attr, Value::Int(42)});
    eff.new_state = done;
    LABFLOW_ASSIGN_OR_RETURN(Oid step,
                             s.RecordStep(step_cls, Timestamp(200), {eff}));

    LABFLOW_ASSIGN_OR_RETURN(Value v, s.MostRecent(m, len_attr));
    EXPECT_EQ(v, Value::Int(42));
    LABFLOW_ASSIGN_OR_RETURN(Value v2, s.MostRecent(m, "length"));
    EXPECT_EQ(v2, Value::Int(42));
    LABFLOW_ASSIGN_OR_RETURN(std::vector<labbase::HistoryEntry> hist,
                             s.History(m, len_attr));
    EXPECT_EQ(hist.size(), 1u);
    LABFLOW_ASSIGN_OR_RETURN(Oid found, s.FindMaterialByName("clone-1"));
    EXPECT_EQ(found.raw, m.raw);
    LABFLOW_ASSIGN_OR_RETURN(labbase::StateId st, s.CurrentState(m));
    EXPECT_EQ(st, done);
    LABFLOW_ASSIGN_OR_RETURN(int64_t n, s.CountInState(done));
    EXPECT_EQ(n, 1);
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> in_state,
                             s.MaterialsInState(done));
    EXPECT_EQ(in_state.size(), 1u);
    LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info, s.GetMaterial(m));
    EXPECT_EQ(info.name, "clone-1");
    LABFLOW_ASSIGN_OR_RETURN(labbase::StepInfo sinfo, s.GetStep(step));
    EXPECT_EQ(sinfo.materials.size(), 1u);

    LABFLOW_ASSIGN_OR_RETURN(Oid set, s.CreateSet("batch"));
    LABFLOW_RETURN_IF_ERROR(s.AddToSet(set, m));
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> members, s.SetMembers(set));
    EXPECT_EQ(members.size(), 1u);
    LABFLOW_ASSIGN_OR_RETURN(Oid set2, s.FindSetByName("batch"));
    EXPECT_EQ(set2.raw, set.raw);
    return Status::OK();
  }).ok());

  // Application-level error statuses cross the wire intact.
  auto missing = s.FindMaterialByName("no-such-clone");
  EXPECT_TRUE(missing.status().IsNotFound());

  // Client-side stats mirror in-process accounting.
  EXPECT_EQ(s.stats().materials_created, 1u);
  EXPECT_EQ(s.stats().steps_recorded, 1u);
  EXPECT_GE(s.stats().most_recent_queries, 2u);
}

TEST(ServerTest, ChecksumParityBetweenInProcessAndRemote) {
  // The network layer must not change any answer: the same deterministic
  // workload, fed once through an in-process session and once through a
  // remote one, must fold to the identical result checksum.
  bench::WorkloadParams params;
  params.base_clones = 15;
  params.seed = 2024;
  bench::Driver::StreamOptions opts;
  opts.version_label = "parity";
  opts.checkpoint_at_end = false;

  uint64_t local_checksum;
  {
    mm::MmManager mgr("parity-local");
    auto db = std::move(LabBase::Open(&mgr, {}).value());
    LabBase::SessionPool pool(db.get());
    {
      LabBase::SessionPool::Lease lease = pool.Acquire();
      auto report = bench::Driver::RunStream(params, opts, lease.get());
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      local_checksum = report->result_checksum;
    }
  }

  uint64_t remote_checksum;
  {
    ServerFixture fx;
    std::unique_ptr<Connection> conn = fx.Connect();
    auto session = RemoteSession::Open(conn.get());
    ASSERT_TRUE(session.ok());
    auto report = bench::Driver::RunStream(params, opts, session->get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    remote_checksum = report->result_checksum;
  }

  EXPECT_EQ(local_checksum, remote_checksum);
}

TEST(ServerTest, PipelinedRequestsCompleteOutOfAwaitOrder) {
  ServerFixture fx;
  std::unique_ptr<Connection> conn = fx.Connect();
  auto s1 = RemoteSession::Open(conn.get());
  auto s2 = RemoteSession::Open(conn.get());
  ASSERT_TRUE(s1.ok() && s2.ok());

  // Queue pings and per-session schema fetches without awaiting any of
  // them, then claim completions newest-first. Request ids interleave two
  // server-side sessions on one connection.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    uint64_t sid =
        (i % 2 == 0) ? s1.value()->session_id() : s2.value()->session_id();
    auto id = conn->Send(Op::kGetSchema, sid, {});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    auto body = conn->Await(*it);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    Decoder d(body.value());
    auto blob = d.GetString();
    ASSERT_TRUE(blob.ok());
    EXPECT_TRUE(labbase::Schema::Decode(blob.value()).ok());
  }
}

TEST(ServerTest, UnknownSessionGetsNotFoundNotDisconnect) {
  ServerFixture fx;
  std::unique_ptr<Connection> conn = fx.Connect();
  auto r = conn->Call(Op::kBegin, /*session_id=*/424242, {});
  EXPECT_TRUE(r.status().IsNotFound());
  // The connection survives.
  EXPECT_TRUE(conn->Ping().ok());
}

TEST(ServerTest, BackpressureWatermarksStillDeliverEverything) {
  // Shrink the write watermarks so a pipelined burst forces the server to
  // pause and resume reads; every response must still arrive.
  ServerConfig config;
  config.write_high_watermark = 2048;
  config.write_low_watermark = 512;
  ServerFixture fx(config);
  std::unique_ptr<Connection> conn = fx.Connect();
  auto session = RemoteSession::Open(conn.get());
  ASSERT_TRUE(session.ok());

  std::vector<uint64_t> ids;
  for (int i = 0; i < 300; ++i) {
    auto id = conn->Send(Op::kGetSchema, session.value()->session_id(), {});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (uint64_t id : ids) {
    auto body = conn->Await(id);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
  }
}

TEST(ServerTest, ShutdownPoisonsClientCleanly) {
  ServerFixture fx;
  std::unique_ptr<Connection> conn = fx.Connect();
  ASSERT_TRUE(conn->Ping().ok());
  fx.server()->Shutdown();
  // Whether the failure surfaces at send or await, it is a clean status —
  // and it sticks.
  auto r = conn->Call(Op::kPing, 0, {});
  EXPECT_FALSE(r.ok());
  auto r2 = conn->Call(Op::kPing, 0, {});
  EXPECT_FALSE(r2.ok());
}

TEST(ServerTest, KillServerMidCommitThenClientRecovers) {
  // A client loses its server mid-transaction. On restart over the same
  // database file, the uncommitted work must be gone (WAL rollback), and
  // redoing the transaction against the new server must succeed.
  TempDir dir;
  bench::ServerOptions storage_opts;
  storage_opts.path = dir.file("killtest.db");

  auto run_server = [&](bool truncate) {
    storage_opts.truncate = truncate;
    auto mgr = bench::CreateServer(bench::ServerVersion::kOstore, storage_opts);
    EXPECT_TRUE(mgr.ok());
    auto db = std::move(LabBase::Open(mgr.value().get(), {}).value());
    return std::make_pair(std::move(mgr.value()), std::move(db));
  };

  labbase::ClassId mat_cls;
  labbase::StateId fresh;
  {
    auto [mgr, db] = run_server(/*truncate=*/true);
    Server server(db.get(), mgr.get(), {});
    ASSERT_TRUE(server.Start().ok());
    auto conn = Connection::Dial("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    auto session = RemoteSession::Open(conn.value().get());
    ASSERT_TRUE(session.ok());
    RemoteSession& s = *session.value();

    // Committed schema survives the kill; the dangling material must not.
    ASSERT_TRUE(s.RunTransaction([&]() -> Status {
      LABFLOW_ASSIGN_OR_RETURN(mat_cls, s.DefineMaterialClass("clone"));
      LABFLOW_ASSIGN_OR_RETURN(fresh, s.DefineState("fresh"));
      return Status::OK();
    }).ok());

    ASSERT_TRUE(s.Begin().ok());
    auto orphan =
        s.CreateMaterial(mat_cls, "orphan", fresh, Timestamp(1));
    ASSERT_TRUE(orphan.ok());

    // Server dies before the client commits: the drain aborts the open
    // transaction when the session lease is released.
    server.Shutdown();
    EXPECT_FALSE(s.Commit().ok());

    // The session destructor's best-effort close hits a dead connection;
    // that must be harmless.
  }

  {
    auto [mgr, db] = run_server(/*truncate=*/false);
    Server server(db.get(), mgr.get(), {});
    ASSERT_TRUE(server.Start().ok());
    auto conn = Connection::Dial("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    auto session = RemoteSession::Open(conn.value().get());
    ASSERT_TRUE(session.ok());
    RemoteSession& s = *session.value();

    // Uncommitted material is gone.
    EXPECT_TRUE(s.FindMaterialByName("orphan").status().IsNotFound());

    // The redo succeeds against the restarted server; the schema cache
    // primed at Open still has the committed classes.
    auto redo_cls = s.schema().MaterialClassByName("clone");
    ASSERT_TRUE(redo_cls.ok());
    auto redo_state = s.schema().StateByName("fresh");
    ASSERT_TRUE(redo_state.ok());
    ASSERT_TRUE(s.RunTransaction([&]() -> Status {
      LABFLOW_ASSIGN_OR_RETURN(
          Oid m, s.CreateMaterial(redo_cls.value(), "orphan",
                                  redo_state.value(), Timestamp(2)));
      (void)m;
      return Status::OK();
    }).ok());
    auto found = s.FindMaterialByName("orphan");
    EXPECT_TRUE(found.ok());
    server.Shutdown();
  }
}

}  // namespace
}  // namespace labflow::net
