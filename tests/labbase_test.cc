#include "labbase/labbase.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/rng.h"
#include "labbase/dump.h"
#include "labbase/records.h"
#include "tests/test_util.h"

namespace labflow::labbase {
namespace {

using test::ManagerKind;
using test::ManagerKindName;
using test::MakeManager;
using test::TempDir;

class LabBaseTest : public ::testing::TestWithParam<ManagerKind> {
 protected:
  void SetUp() override {
    mgr_ = MakeManager(GetParam(), dir_.file("db"));
    ASSERT_NE(mgr_, nullptr);
    auto db = LabBase::Open(mgr_.get(), LabBaseOptions{});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    base_ = std::move(db).value();
    db_ = base_->OpenSession();
  }
  void TearDown() override {
    db_.reset();
    base_.reset();
    if (mgr_ != nullptr) {
      ASSERT_TRUE(mgr_->Close().ok());
    }
  }

  /// Standard mini-schema used by most tests.
  void DefineMiniSchema() {
    clone_ = db_->DefineMaterialClass("clone").value();
    received_ = db_->DefineState("cl_received").value();
    sequenced_ = db_->DefineState("waiting_for_incorporation").value();
    seq_step_ = db_->DefineStepClass(
                       "determine_sequence",
                       {"sequence", "base_calls", "error_rate"})
                    .value();
    seq_attr_ = db_->schema().AttributeByName("sequence").value();
  }

  Oid NewClone(const std::string& name, int64_t t = 100) {
    auto oid = db_->CreateMaterial(clone_, name, received_, Timestamp(t));
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    return oid.value();
  }

  Oid Sequence(Oid m, const std::string& seq, int64_t t,
               StateId to = kInvalidState) {
    StepEffect effect;
    effect.material = m;
    effect.tags = {{seq_attr_, Value::String(seq)}};
    effect.new_state = to;
    auto step = db_->RecordStep(seq_step_, Timestamp(t), {effect});
    EXPECT_TRUE(step.ok()) << step.status().ToString();
    return step.value();
  }

  TempDir dir_;
  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<LabBase> base_;
  std::unique_ptr<LabBase::Session> db_;
  ClassId clone_ = kInvalidClass;
  ClassId seq_step_ = kInvalidClass;
  StateId received_ = kInvalidState;
  StateId sequenced_ = kInvalidState;
  AttrId seq_attr_ = kInvalidAttr;
};

TEST_P(LabBaseTest, SchemaDefinitionRoundtrip) {
  DefineMiniSchema();
  EXPECT_TRUE(db_->schema().IsMaterialClass(clone_));
  EXPECT_TRUE(db_->schema().IsStepClass(seq_step_));
  EXPECT_EQ(db_->schema().ClassName(clone_).value(), "clone");
  EXPECT_EQ(db_->schema().StateName(received_).value(), "cl_received");
}

TEST_P(LabBaseTest, DuplicateMaterialClassRejected) {
  DefineMiniSchema();
  EXPECT_TRUE(db_->DefineMaterialClass("clone").status().IsAlreadyExists());
}

TEST_P(LabBaseTest, CreateAndFetchMaterial) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  auto info = db_->GetMaterial(m);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "cl-0001");
  EXPECT_EQ(info->class_id, clone_);
  EXPECT_EQ(info->state, received_);
  EXPECT_TRUE(info->attrs_present.empty());
  EXPECT_EQ(db_->FindMaterialByName("cl-0001").value(), m);
}

TEST_P(LabBaseTest, DuplicateMaterialNameRejected) {
  DefineMiniSchema();
  NewClone("cl-0001");
  EXPECT_TRUE(db_->CreateMaterial(clone_, "cl-0001", received_, Timestamp(1))
                  .status()
                  .IsAlreadyExists());
}

TEST_P(LabBaseTest, RecordStepUpdatesMostRecent) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  Sequence(m, "ACGT", 200);
  auto v = db_->MostRecent(m, seq_attr_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "ACGT");
  EXPECT_EQ(db_->MostRecent(m, "sequence").value().string_value(), "ACGT");
}

TEST_P(LabBaseTest, MostRecentFollowsValidTimeNotInsertionOrder) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  // Enter steps out of order: the later-valid-time value must win even
  // though it was inserted first (paper Section 7, temporal semantics).
  Sequence(m, "NEWER", 500);
  Sequence(m, "OLDER", 300);
  EXPECT_EQ(db_->MostRecent(m, seq_attr_).value().string_value(), "NEWER");
}

TEST_P(LabBaseTest, HistoryIsAscendingByValidTime) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  Sequence(m, "v2", 400);
  Sequence(m, "v1", 200);
  Sequence(m, "v3", 600);
  auto hist = db_->History(m, seq_attr_);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->size(), 3u);
  EXPECT_EQ((*hist)[0].value.string_value(), "v1");
  EXPECT_EQ((*hist)[1].value.string_value(), "v2");
  EXPECT_EQ((*hist)[2].value.string_value(), "v3");
  EXPECT_LT((*hist)[0].time, (*hist)[1].time);
  EXPECT_LT((*hist)[1].time, (*hist)[2].time);
}

TEST_P(LabBaseTest, MostRecentOfUnknownAttrIsNotFound) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  EXPECT_TRUE(db_->MostRecent(m, seq_attr_).status().IsNotFound());
}

TEST_P(LabBaseTest, StateTransitionsDriveWorkQueues) {
  DefineMiniSchema();
  Oid a = NewClone("cl-a");
  Oid b = NewClone("cl-b");
  EXPECT_EQ(db_->CountInState(received_).value(), 2);
  Sequence(a, "ACGT", 200, sequenced_);
  EXPECT_EQ(db_->CountInState(received_).value(), 1);
  EXPECT_EQ(db_->CountInState(sequenced_).value(), 1);
  auto queue = db_->MaterialsInState(sequenced_);
  ASSERT_TRUE(queue.ok());
  ASSERT_EQ(queue->size(), 1u);
  EXPECT_EQ((*queue)[0], a);
  EXPECT_EQ(db_->CurrentState(a).value(), sequenced_);
  EXPECT_EQ(db_->CurrentState(b).value(), received_);
}

TEST_P(LabBaseTest, StaleStateChangeIgnored) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001", 100);
  Sequence(m, "v-now", 500, sequenced_);
  // A step with an older valid time must not regress the state.
  Sequence(m, "v-old", 200, received_);
  EXPECT_EQ(db_->CurrentState(m).value(), sequenced_);
}

TEST_P(LabBaseTest, BatchStepAffectsAllMaterials) {
  DefineMiniSchema();
  ClassId load_gel = db_->DefineStepClass("load_gel", {"lane"}).value();
  AttrId lane = db_->schema().AttributeByName("lane").value();
  std::vector<StepEffect> effects;
  std::vector<Oid> ms;
  for (int i = 0; i < 16; ++i) {
    Oid m = NewClone("tc-" + std::to_string(i));
    ms.push_back(m);
    StepEffect e;
    e.material = m;
    e.tags = {{lane, Value::Int(i)}};
    e.new_state = sequenced_;
    effects.push_back(e);
  }
  auto step = db_->RecordStep(load_gel, Timestamp(900), effects);
  ASSERT_TRUE(step.ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(db_->MostRecent(ms[i], lane).value().int_value(), i);
    EXPECT_EQ(db_->CurrentState(ms[i]).value(), sequenced_);
  }
  auto info = db_->GetStep(step.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->materials.size(), 16u);
}

TEST_P(LabBaseTest, SchemaEvolutionBindsInstancesToVersions) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  Oid old_step = Sequence(m, "OLDCHEM", 200);
  EXPECT_EQ(db_->GetStep(old_step)->version, 0u);

  // Evolve: determine_sequence gains a 'chemistry' attribute.
  ClassId evolved =
      db_->DefineStepClass("determine_sequence",
                           {"sequence", "base_calls", "error_rate",
                            "chemistry"})
          .value();
  EXPECT_EQ(evolved, seq_step_);
  EXPECT_EQ(db_->schema().VersionCount(seq_step_).value(), 2u);

  AttrId chem = db_->schema().AttributeByName("chemistry").value();
  StepEffect effect;
  effect.material = m;
  effect.tags = {{seq_attr_, Value::String("NEWCHEM")},
                 {chem, Value::String("dye-terminator")}};
  auto new_step = db_->RecordStep(seq_step_, Timestamp(300), {effect});
  ASSERT_TRUE(new_step.ok());
  EXPECT_EQ(db_->GetStep(new_step.value())->version, 1u);
  // Old instance unchanged (no migration).
  EXPECT_EQ(db_->GetStep(old_step)->version, 0u);
  EXPECT_EQ(db_->MostRecent(m, chem).value().string_value(),
            "dye-terminator");
}

TEST_P(LabBaseTest, RedefiningIdenticalAttrSetIsSameVersion) {
  DefineMiniSchema();
  db_->DefineStepClass("determine_sequence",
                       {"sequence", "base_calls", "error_rate"})
      .value();
  EXPECT_EQ(db_->schema().VersionCount(seq_step_).value(), 1u);
}

TEST_P(LabBaseTest, TagOutsideVersionAttrSetRejected) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  // Make 'rogue_attr' exist in the schema via another step class; it is
  // still not part of determine_sequence's current version.
  db_->DefineStepClass("other_step", {"rogue_attr"}).value();
  AttrId rogue = db_->schema().AttributeByName("rogue_attr").value();
  StepEffect effect;
  effect.material = m;
  effect.tags = {{rogue, Value::Int(1)}};
  EXPECT_TRUE(db_->RecordStep(seq_step_, Timestamp(1), {effect})
                  .status()
                  .IsInvalidArgument());
}

TEST_P(LabBaseTest, ListValuedAttributesStoreHomologyHits) {
  DefineMiniSchema();
  ClassId blast = db_->DefineStepClass("blast_search", {"hits"}).value();
  AttrId hits = db_->schema().AttributeByName("hits").value();
  Oid m = NewClone("cl-0001");
  Value hit_list = Value::MakeList({
      Value::MakeList({Value::String("genbank"), Value::String("U00096"),
                       Value::Real(812.5)}),
      Value::MakeList({Value::String("embl"), Value::String("X52700"),
                       Value::Real(97.2)}),
  });
  StepEffect effect;
  effect.material = m;
  effect.tags = {{hits, hit_list}};
  ASSERT_TRUE(db_->RecordStep(blast, Timestamp(50), {effect}).ok());
  auto v = db_->MostRecent(m, hits);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, hit_list);
  EXPECT_EQ(v->list_value().size(), 2u);
}

TEST_P(LabBaseTest, MaterialSetsTrackMembership) {
  DefineMiniSchema();
  Oid gel_set = db_->CreateSet("gel-42-lanes").value();
  Oid a = NewClone("tc-a");
  Oid b = NewClone("tc-b");
  ASSERT_TRUE(db_->AddToSet(gel_set, a).ok());
  ASSERT_TRUE(db_->AddToSet(gel_set, b).ok());
  auto members = db_->SetMembers(gel_set);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 2u);
  ASSERT_TRUE(db_->RemoveFromSet(gel_set, a).ok());
  EXPECT_EQ(db_->SetMembers(gel_set)->size(), 1u);
  EXPECT_EQ(db_->FindSetByName("gel-42-lanes").value(), gel_set);
  EXPECT_TRUE(db_->RemoveFromSet(gel_set, a).IsNotFound());
}

TEST_P(LabBaseTest, MaterialsOfClassIndex) {
  DefineMiniSchema();
  ClassId gel = db_->DefineMaterialClass("gel").value();
  NewClone("cl-1");
  NewClone("cl-2");
  ASSERT_TRUE(db_->CreateMaterial(gel, "gel-1", received_, Timestamp(5)).ok());
  EXPECT_EQ(db_->MaterialsOfClass(clone_)->size(), 2u);
  EXPECT_EQ(db_->MaterialsOfClass(gel)->size(), 1u);
}

TEST_P(LabBaseTest, StorageSchemaIsExactlyThreeClassesPlusCatalog) {
  // Paper Table 1 (experiment T1): whatever the user schema does, the
  // storage manager only ever sees sm_material, sm_step, material_set and
  // the catalog record.
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  Sequence(m, "ACGT", 10);
  db_->CreateSet("a-set").value();
  int materials = 0, steps = 0, sets = 0, roots = 0;
  ASSERT_TRUE(mgr_
                  ->ScanAll([&](storage::ObjectId, std::string_view data) {
                    auto kind = PeekRecordKind(data);
                    EXPECT_TRUE(kind.ok()) << "unknown storage record";
                    switch (kind.value()) {
                      case RecordKind::kMaterial:
                        ++materials;
                        break;
                      case RecordKind::kStep:
                        ++steps;
                        break;
                      case RecordKind::kMaterialSet:
                        ++sets;
                        break;
                      case RecordKind::kRoot:
                        ++roots;
                        break;
                    }
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(materials, 1);
  EXPECT_EQ(steps, 1);
  EXPECT_EQ(sets, 1);
  EXPECT_EQ(roots, 1);
}

TEST_P(LabBaseTest, LongHistoryGrowsMaterialAcrossPages) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  for (int i = 0; i < 300; ++i) {
    Sequence(m, "seq-" + std::to_string(i), 100 + i);
  }
  EXPECT_EQ(db_->MostRecent(m, seq_attr_).value().string_value(), "seq-299");
  auto hist = db_->History(m, seq_attr_);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->size(), 300u);
}

TEST_P(LabBaseTest, ValidTimePermutationInvariance) {
  // D4 property: the most-recent value and the sorted history must not
  // depend on the order steps are *entered*, only on their valid times.
  // Record the same 12 steps in several random entry orders (one material
  // per permutation) and compare outcomes.
  DefineMiniSchema();
  struct Obs {
    std::string most_recent;
    std::vector<int64_t> history_times;
  };
  std::vector<Obs> outcomes;
  Rng rng(99);
  for (int perm = 0; perm < 4; ++perm) {
    Oid m = NewClone("perm-" + std::to_string(perm));
    std::vector<int64_t> times = {100, 200, 300, 400,  500,  600,
                                  700, 800, 900, 1000, 1100, 1200};
    if (perm > 0) {
      for (size_t i = times.size(); i > 1; --i) {
        std::swap(times[i - 1], times[rng.NextBelow(i)]);
      }
    }
    for (int64_t t : times) {
      Sequence(m, "seq-at-" + std::to_string(t), t);
    }
    Obs obs;
    obs.most_recent = db_->MostRecent(m, seq_attr_).value().string_value();
    // Note: materialize the Result before iterating — in C++20 a range-for
    // over `History(...).value()` would dangle (P2718 fixes this in C++23).
    std::vector<HistoryEntry> hist = db_->History(m, seq_attr_).value();
    for (const HistoryEntry& e : hist) {
      obs.history_times.push_back(e.time.micros);
    }
    outcomes.push_back(std::move(obs));
  }
  for (size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].most_recent, outcomes[0].most_recent)
        << "permutation " << i;
    EXPECT_EQ(outcomes[i].history_times, outcomes[0].history_times)
        << "permutation " << i;
  }
  EXPECT_EQ(outcomes[0].most_recent, "seq-at-1200");
  EXPECT_TRUE(std::is_sorted(outcomes[0].history_times.begin(),
                             outcomes[0].history_times.end()));
}

TEST_P(LabBaseTest, ValueAsOfAndHistoryBetween) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  Sequence(m, "v100", 100);
  Sequence(m, "v300", 300);
  Sequence(m, "v200", 200);  // out-of-order entry

  // As-of lands on the latest entry at or before the given time.
  EXPECT_EQ(db_->ValueAsOf(m, seq_attr_, Timestamp(100)).value()
                .string_value(),
            "v100");
  EXPECT_EQ(db_->ValueAsOf(m, seq_attr_, Timestamp(250)).value()
                .string_value(),
            "v200");
  EXPECT_EQ(db_->ValueAsOf(m, seq_attr_, Timestamp(9999)).value()
                .string_value(),
            "v300");
  EXPECT_TRUE(db_->ValueAsOf(m, seq_attr_, Timestamp(50))
                  .status()
                  .IsNotFound());

  // Range slices are inclusive and ascending.
  auto mid = db_->HistoryBetween(m, seq_attr_, Timestamp(150), Timestamp(300));
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->size(), 2u);
  EXPECT_EQ((*mid)[0].value.string_value(), "v200");
  EXPECT_EQ((*mid)[1].value.string_value(), "v300");
  auto none =
      db_->HistoryBetween(m, seq_attr_, Timestamp(400), Timestamp(500));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_P(LabBaseTest, DumpSummaryAndAuditRender) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  Sequence(m, "ACGT", 200, sequenced_);
  db_->CreateSet("a-set").value();

  std::ostringstream summary;
  ASSERT_TRUE(DumpSummary(db_.get(), summary).ok());
  std::string s = summary.str();
  EXPECT_NE(s.find("clone: 1 instance(s)"), std::string::npos);
  EXPECT_NE(s.find("determine_sequence"), std::string::npos);
  EXPECT_NE(s.find("waiting_for_incorporation: 1"), std::string::npos);

  std::ostringstream audit;
  ASSERT_TRUE(DumpMaterialAudit(db_.get(), m, audit).ok());
  std::string a = audit.str();
  EXPECT_NE(a.find("cl-0001"), std::string::npos);
  EXPECT_NE(a.find("sequence = \"ACGT\""), std::string::npos);
  EXPECT_NE(a.find("determine_sequence (v0)"), std::string::npos);
  EXPECT_NE(a.find("-> waiting_for_incorporation"), std::string::npos);
}

TEST_P(LabBaseTest, GetStepOnMaterialOidRejected) {
  DefineMiniSchema();
  Oid m = NewClone("cl-0001");
  EXPECT_TRUE(db_->GetStep(m).status().IsInvalidArgument());
  Oid step = Sequence(m, "X", 1);
  EXPECT_TRUE(db_->GetMaterial(step).status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(AllManagers, LabBaseTest,
                         ::testing::Values(ManagerKind::kOstore,
                                           ManagerKind::kTexas,
                                           ManagerKind::kTexasTC,
                                           ManagerKind::kMm),
                         [](const auto& info) {
                           return ManagerKindName(info.param);
                         });

/// The D1 ablation: with the access structure off, answers must match.
class NoIndexLabBaseTest : public ::testing::TestWithParam<ManagerKind> {};

TEST_P(NoIndexLabBaseTest, ScanPathMatchesIndexedAnswers) {
  TempDir dir;
  auto mgr = MakeManager(GetParam(), dir.file("db"));
  ASSERT_NE(mgr, nullptr);
  LabBaseOptions opts;
  opts.use_most_recent_index = false;
  auto base = LabBase::Open(mgr.get(), opts).value();
  auto db = base->OpenSession();
  ClassId clone = db->DefineMaterialClass("clone").value();
  StateId s0 = db->DefineState("s0").value();
  ClassId step = db->DefineStepClass("measure", {"x"}).value();
  AttrId x = db->schema().AttributeByName("x").value();
  Oid m = db->CreateMaterial(clone, "m", s0, Timestamp(0)).value();
  for (int i = 0; i < 20; ++i) {
    StepEffect e;
    e.material = m;
    e.tags = {{x, Value::Int(i)}};
    // Shuffled valid times: 10, 9, 11, 8, 12 ...
    int64_t t = 100 + (i % 2 == 0 ? i : -i);
    ASSERT_TRUE(db->RecordStep(step, Timestamp(t), {e}).ok());
  }
  // Most recent by valid time = largest t = i=18 (t=118).
  EXPECT_EQ(db->MostRecent(m, x).value().int_value(), 18);
  auto hist = db->History(m, x);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->size(), 20u);
  for (size_t i = 1; i < hist->size(); ++i) {
    EXPECT_LE((*hist)[i - 1].time, (*hist)[i].time);
  }
  ASSERT_TRUE(mgr->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(AllManagers, NoIndexLabBaseTest,
                         ::testing::Values(ManagerKind::kTexas,
                                           ManagerKind::kMm),
                         [](const auto& info) {
                           return ManagerKindName(info.param);
                         });

/// Persistence: the full wrapper state must survive close + reopen.
class LabBasePersistenceTest : public ::testing::TestWithParam<ManagerKind> {};

TEST_P(LabBasePersistenceTest, FullStateSurvivesReopen) {
  TempDir dir;
  Oid m_id;
  ClassId step_class;
  AttrId seq;
  StateId sequenced;
  {
    auto mgr = MakeManager(GetParam(), dir.file("db"));
    ASSERT_NE(mgr, nullptr);
    auto base = LabBase::Open(mgr.get(), LabBaseOptions{}).value();
    auto db = base->OpenSession();
    ClassId clone = db->DefineMaterialClass("clone").value();
    StateId received = db->DefineState("received").value();
    sequenced = db->DefineState("sequenced").value();
    step_class = db->DefineStepClass("determine_sequence", {"sequence"})
                     .value();
    // Evolve once so version data must persist too.
    db->DefineStepClass("determine_sequence", {"sequence", "chemistry"})
        .value();
    seq = db->schema().AttributeByName("sequence").value();
    m_id = db->CreateMaterial(clone, "cl-7", received, Timestamp(10)).value();
    StepEffect e;
    e.material = m_id;
    e.tags = {{seq, Value::String("GATTACA")}};
    e.new_state = sequenced;
    ASSERT_TRUE(db->RecordStep(step_class, Timestamp(20), {e}).ok());
    Oid set = db->CreateSet("finished").value();
    ASSERT_TRUE(db->AddToSet(set, m_id).ok());
    ASSERT_TRUE(mgr->Close().ok());
  }
  auto mgr = MakeManager(GetParam(), dir.file("db"), 256, /*truncate=*/false);
  ASSERT_NE(mgr, nullptr);
  auto base = LabBase::Open(mgr.get(), LabBaseOptions{}).value();
  auto db = base->OpenSession();
  EXPECT_EQ(db->schema().VersionCount(step_class).value(), 2u);
  EXPECT_EQ(db->FindMaterialByName("cl-7").value(), m_id);
  EXPECT_EQ(db->MostRecent(m_id, seq).value().string_value(), "GATTACA");
  EXPECT_EQ(db->CurrentState(m_id).value(), sequenced);
  EXPECT_EQ(db->CountInState(sequenced).value(), 1);
  Oid set = db->FindSetByName("finished").value();
  EXPECT_EQ(db->SetMembers(set)->size(), 1u);
  ASSERT_TRUE(mgr->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(DiskManagers, LabBasePersistenceTest,
                         ::testing::Values(ManagerKind::kOstore,
                                           ManagerKind::kTexas,
                                           ManagerKind::kTexasTC),
                         [](const auto& info) {
                           return ManagerKindName(info.param);
                         });

TEST(LabBaseTxnTest, AbortedStepLeavesNoTrace) {
  TempDir dir;
  auto mgr = MakeManager(ManagerKind::kOstore, dir.file("db"));
  ASSERT_NE(mgr, nullptr);
  auto base = LabBase::Open(mgr.get(), LabBaseOptions{}).value();
  auto db = base->OpenSession();
  ClassId clone = db->DefineMaterialClass("clone").value();
  StateId s0 = db->DefineState("s0").value();
  StateId s1 = db->DefineState("s1").value();
  ClassId step = db->DefineStepClass("advance", {"x"}).value();
  AttrId x = db->schema().AttributeByName("x").value();
  Oid m = db->CreateMaterial(clone, "m", s0, Timestamp(0)).value();

  ASSERT_TRUE(db->Begin().ok());
  StepEffect e;
  e.material = m;
  e.tags = {{x, Value::Int(7)}};
  e.new_state = s1;
  ASSERT_TRUE(db->RecordStep(step, Timestamp(5), {e}).ok());
  ASSERT_TRUE(db->Abort().ok());

  EXPECT_TRUE(db->MostRecent(m, x).status().IsNotFound());
  EXPECT_EQ(db->CurrentState(m).value(), s0);
  EXPECT_EQ(db->CountInState(s0).value(), 1);
  EXPECT_EQ(db->CountInState(s1).value(), 0);
  auto info = db->GetMaterial(m);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->attrs_present.empty());
  ASSERT_TRUE(mgr->Close().ok());
}

}  // namespace
}  // namespace labflow::labbase
