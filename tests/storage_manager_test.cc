#include "storage/storage_manager.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/rng.h"
#include "tests/test_util.h"

namespace labflow::storage {
namespace {

using test::ManagerKind;
using test::ManagerKindName;
using test::MakeManager;
using test::TempDir;

/// Parameterized over every storage manager: the LabBase wrapper must
/// behave identically on all of them, so the object API contract is tested
/// uniformly.
class StorageManagerTest : public ::testing::TestWithParam<ManagerKind> {
 protected:
  void SetUp() override {
    mgr_ = MakeManager(GetParam(), dir_.file("db"));
    ASSERT_NE(mgr_, nullptr);
  }
  void TearDown() override {
    if (mgr_ != nullptr) {
      ASSERT_TRUE(mgr_->Close().ok());
    }
  }

  TempDir dir_;
  std::unique_ptr<StorageManager> mgr_;
};

TEST_P(StorageManagerTest, AllocateReadRoundtrip) {
  auto id = mgr_->Allocate("payload bytes", AllocHint{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto data = mgr_->Read(id.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "payload bytes");
}

TEST_P(StorageManagerTest, EmptyObjectRoundtrip) {
  auto id = mgr_->Allocate("", AllocHint{});
  ASSERT_TRUE(id.ok());
  auto data = mgr_->Read(id.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "");
}

TEST_P(StorageManagerTest, ReadUnknownIdFails) {
  EXPECT_TRUE(mgr_->Read(ObjectId(0)).status().IsInvalidArgument() ||
              mgr_->Read(ObjectId(0)).status().IsNotFound());
  EXPECT_TRUE(mgr_->Read(ObjectId(99999999)).status().IsNotFound());
}

TEST_P(StorageManagerTest, UpdateInPlace) {
  auto id = mgr_->Allocate("original", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr_->Update(id.value(), "changed").ok());
  EXPECT_EQ(mgr_->Read(id.value()).value(), "changed");
}

TEST_P(StorageManagerTest, UpdateGrowKeepsIdStable) {
  auto id = mgr_->Allocate("small", AllocHint{});
  ASSERT_TRUE(id.ok());
  // Grow through several sizes, including ones that cannot stay in the
  // original slot; the public id must keep working.
  for (size_t size : {50u, 500u, 5000u, 200u, 7000u}) {
    std::string data(size, 'g');
    ASSERT_TRUE(mgr_->Update(id.value(), data).ok()) << size;
    auto back = mgr_->Read(id.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
  }
}

TEST_P(StorageManagerTest, FreeThenReadFails) {
  auto id = mgr_->Allocate("to be freed", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr_->Free(id.value()).ok());
  EXPECT_TRUE(mgr_->Read(id.value()).status().IsNotFound());
}

TEST_P(StorageManagerTest, DoubleFreeFails) {
  auto id = mgr_->Allocate("x", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr_->Free(id.value()).ok());
  EXPECT_FALSE(mgr_->Free(id.value()).ok());
}

TEST_P(StorageManagerTest, LargeObjectSpansPages) {
  std::string big(100000, '\0');
  Rng rng(7);
  for (char& c : big) c = static_cast<char>('a' + rng.NextBelow(26));
  auto id = mgr_->Allocate(big, AllocHint{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto back = mgr_->Read(id.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), big);
}

TEST_P(StorageManagerTest, LargeObjectUpdateAndShrink) {
  std::string big(50000, 'L');
  auto id = mgr_->Allocate(big, AllocHint{});
  ASSERT_TRUE(id.ok());
  // Shrink to inline size...
  ASSERT_TRUE(mgr_->Update(id.value(), "now small").ok());
  EXPECT_EQ(mgr_->Read(id.value()).value(), "now small");
  // ...and back to spanning.
  std::string big2(64000, 'M');
  ASSERT_TRUE(mgr_->Update(id.value(), big2).ok());
  EXPECT_EQ(mgr_->Read(id.value()).value(), big2);
}

TEST_P(StorageManagerTest, LargeObjectFree) {
  std::string big(40000, 'F');
  auto id = mgr_->Allocate(big, AllocHint{});
  ASSERT_TRUE(id.ok());
  uint64_t before = mgr_->stats().live_objects;
  ASSERT_TRUE(mgr_->Free(id.value()).ok());
  EXPECT_EQ(mgr_->stats().live_objects, before - 1);
  EXPECT_TRUE(mgr_->Read(id.value()).status().IsNotFound());
}

TEST_P(StorageManagerTest, ManyObjectsSurvive) {
  Rng rng(42);
  std::map<uint64_t, std::string> shadow;
  for (int i = 0; i < 2000; ++i) {
    std::string data = rng.NextName(1 + rng.NextBelow(300));
    auto id = mgr_->Allocate(data, AllocHint{});
    ASSERT_TRUE(id.ok());
    shadow[id.value().raw] = data;
  }
  for (const auto& [raw, data] : shadow) {
    auto back = mgr_->Read(ObjectId(raw));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value(), data);
  }
  EXPECT_EQ(mgr_->stats().live_objects, shadow.size());
}

TEST_P(StorageManagerTest, ScanAllSeesEveryObjectOnce) {
  std::map<uint64_t, std::string> shadow;
  for (int i = 0; i < 100; ++i) {
    std::string data = "object-" + std::to_string(i);
    auto id = mgr_->Allocate(data, AllocHint{});
    ASSERT_TRUE(id.ok());
    shadow[id.value().raw] = data;
  }
  // One large object and one forwarded object must also appear exactly once.
  std::string big(30000, 'S');
  auto big_id = mgr_->Allocate(big, AllocHint{});
  ASSERT_TRUE(big_id.ok());
  shadow[big_id.value().raw] = big;

  std::map<uint64_t, std::string> seen;
  ASSERT_TRUE(mgr_
                  ->ScanAll([&](ObjectId id, std::string_view data) {
                    EXPECT_EQ(seen.count(id.raw), 0u) << "duplicate in scan";
                    seen[id.raw] = std::string(data);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, shadow);
}

TEST_P(StorageManagerTest, StatsReportSize) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(mgr_->Allocate(std::string(500, 'd'), AllocHint{}).ok());
  }
  StorageStats s = mgr_->stats();
  EXPECT_GE(s.db_size_bytes, 200u * 500u);
  EXPECT_EQ(s.live_objects, 200u);
}

TEST_P(StorageManagerTest, RandomizedWorkloadMatchesShadow) {
  Rng rng(1996);
  std::map<uint64_t, std::string> shadow;
  for (int step = 0; step < 3000; ++step) {
    int action = static_cast<int>(rng.NextBelow(10));
    if (action < 5 || shadow.empty()) {
      std::string data = rng.NextName(1 + rng.NextBelow(400));
      auto id = mgr_->Allocate(data, AllocHint{});
      ASSERT_TRUE(id.ok());
      shadow[id.value().raw] = data;
    } else if (action < 8) {
      auto it = shadow.begin();
      std::advance(it, rng.NextBelow(shadow.size()));
      std::string data = rng.NextName(1 + rng.NextBelow(1200));
      ASSERT_TRUE(mgr_->Update(ObjectId(it->first), data).ok());
      it->second = data;
    } else {
      auto it = shadow.begin();
      std::advance(it, rng.NextBelow(shadow.size()));
      ASSERT_TRUE(mgr_->Free(ObjectId(it->first)).ok());
      shadow.erase(it);
    }
  }
  for (const auto& [raw, data] : shadow) {
    auto back = mgr_->Read(ObjectId(raw));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back.value(), data);
  }
  EXPECT_EQ(mgr_->stats().live_objects, shadow.size());
}

INSTANTIATE_TEST_SUITE_P(AllManagers, StorageManagerTest,
                         ::testing::Values(ManagerKind::kOstore,
                                           ManagerKind::kTexas,
                                           ManagerKind::kTexasTC,
                                           ManagerKind::kMm),
                         [](const auto& info) {
                           return ManagerKindName(info.param);
                         });

/// Persistence tests only apply to the disk-backed managers.
class PersistentManagerTest : public ::testing::TestWithParam<ManagerKind> {};

TEST_P(PersistentManagerTest, DataSurvivesCleanReopen) {
  TempDir dir;
  std::map<uint64_t, std::string> shadow;
  {
    auto mgr = MakeManager(GetParam(), dir.file("db"));
    ASSERT_NE(mgr, nullptr);
    for (int i = 0; i < 500; ++i) {
      std::string data = "persistent-" + std::to_string(i);
      auto id = mgr->Allocate(data, AllocHint{});
      ASSERT_TRUE(id.ok());
      shadow[id.value().raw] = data;
    }
    ASSERT_TRUE(mgr->Close().ok());
  }
  auto mgr = MakeManager(GetParam(), dir.file("db"), 256, /*truncate=*/false);
  ASSERT_NE(mgr, nullptr);
  EXPECT_EQ(mgr->stats().live_objects, shadow.size());
  for (const auto& [raw, data] : shadow) {
    auto back = mgr->Read(ObjectId(raw));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back.value(), data);
  }
  // The reopened store must keep allocating correctly.
  auto id = mgr->Allocate("post-reopen", AllocHint{});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(shadow.count(id.value().raw), 0u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST_P(PersistentManagerTest, SmallBufferPoolStillCorrect) {
  TempDir dir;
  auto mgr = MakeManager(GetParam(), dir.file("db"), /*pool_pages=*/4);
  ASSERT_NE(mgr, nullptr);
  std::map<uint64_t, std::string> shadow;
  for (int i = 0; i < 1000; ++i) {
    std::string data(200, static_cast<char>('a' + i % 26));
    auto id = mgr->Allocate(data, AllocHint{});
    ASSERT_TRUE(id.ok());
    shadow[id.value().raw] = data;
  }
  for (const auto& [raw, data] : shadow) {
    ASSERT_EQ(mgr->Read(ObjectId(raw)).value(), data);
  }
  StorageStats s = mgr->stats();
  EXPECT_GT(s.evictions, 0u) << "a 4-page pool over ~30 pages must evict";
  EXPECT_GT(s.disk_reads, 0u) << "re-reading evicted pages must fault";
  ASSERT_TRUE(mgr->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(DiskManagers, PersistentManagerTest,
                         ::testing::Values(ManagerKind::kOstore,
                                           ManagerKind::kTexas,
                                           ManagerKind::kTexasTC),
                         [](const auto& info) {
                           return ManagerKindName(info.param);
                         });

TEST(ClusteringTest, TexasTcPlacesNeighborsOnAnchorPage) {
  TempDir dir;
  auto mgr = MakeManager(ManagerKind::kTexasTC, dir.file("db"));
  ASSERT_NE(mgr, nullptr);
  auto anchor = mgr->Allocate("anchor", AllocHint{});
  ASSERT_TRUE(anchor.ok());
  // Interleave: allocations hinted at the anchor vs unhinted noise.
  std::vector<ObjectId> clustered;
  for (int i = 0; i < 20; ++i) {
    AllocHint hint;
    hint.cluster_near = anchor.value();
    auto near = mgr->Allocate(std::string(64, 'c'), hint);
    ASSERT_TRUE(near.ok());
    clustered.push_back(near.value());
    ASSERT_TRUE(mgr->Allocate(std::string(64, 'n'), AllocHint{}).ok());
  }
  for (ObjectId id : clustered) {
    EXPECT_EQ(id.page(), anchor.value().page())
        << "clustered object landed off the anchor page";
  }
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(ClusteringTest, PlainTexasIgnoresClusterHint) {
  TempDir dir;
  auto mgr = MakeManager(ManagerKind::kTexas, dir.file("db"));
  ASSERT_NE(mgr, nullptr);
  auto anchor = mgr->Allocate("anchor", AllocHint{});
  ASSERT_TRUE(anchor.ok());
  // Fill several pages of noise, then ask (futilely) for clustering.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(mgr->Allocate(std::string(200, 'n'), AllocHint{}).ok());
  }
  AllocHint hint;
  hint.cluster_near = anchor.value();
  auto near = mgr->Allocate(std::string(64, 'c'), hint);
  ASSERT_TRUE(near.ok());
  EXPECT_NE(near.value().page(), anchor.value().page())
      << "plain Texas must allocate in allocation order, not near anchors";
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(SegmentTest, OstoreSegmentsSeparatePages) {
  TempDir dir;
  auto mgr = MakeManager(ManagerKind::kOstore, dir.file("db"));
  ASSERT_NE(mgr, nullptr);
  auto hot = mgr->CreateSegment("hot");
  auto cold = mgr->CreateSegment("cold");
  ASSERT_TRUE(hot.ok() && cold.ok());
  EXPECT_NE(hot.value(), cold.value());
  std::set<uint64_t> hot_pages, cold_pages;
  for (int i = 0; i < 200; ++i) {
    AllocHint h;
    h.segment = hot.value();
    auto a = mgr->Allocate(std::string(100, 'h'), h);
    ASSERT_TRUE(a.ok());
    hot_pages.insert(a.value().page());
    h.segment = cold.value();
    auto b = mgr->Allocate(std::string(100, 'c'), h);
    ASSERT_TRUE(b.ok());
    cold_pages.insert(b.value().page());
  }
  for (uint64_t p : hot_pages) {
    EXPECT_EQ(cold_pages.count(p), 0u)
        << "segments must never share a page";
  }
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(SegmentTest, TexasCollapsesSegmentsToZero) {
  TempDir dir;
  auto mgr = MakeManager(ManagerKind::kTexas, dir.file("db"));
  ASSERT_NE(mgr, nullptr);
  auto a = mgr->CreateSegment("hot");
  auto b = mgr->CreateSegment("cold");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 0);
  ASSERT_TRUE(mgr->Close().ok());
}

}  // namespace
}  // namespace labflow::storage
