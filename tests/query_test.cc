#include "query/solver.h"

#include <gtest/gtest.h>

#include "labbase/labbase.h"
#include "mm/mm_manager.h"
#include "query/parser.h"
#include "query/term.h"
#include "query/unify.h"
#include "tests/test_util.h"

namespace labflow::query {
namespace {

using test::TempDir;

// ---- Terms -----------------------------------------------------------------

TEST(TermTest, ConstructorsAndAccessors) {
  Term v = Term::Var("X");
  EXPECT_TRUE(v.is_var());
  EXPECT_EQ(v.name(), "X");
  Term a = Term::Atom("clone");
  EXPECT_TRUE(a.is_atom());
  Term c = Term::Const(Value::Int(3));
  EXPECT_TRUE(c.is_const());
  Term comp = Term::Make("state", {v, a});
  EXPECT_TRUE(comp.is_compound());
  EXPECT_EQ(comp.arity(), 2u);
}

TEST(TermTest, ListHelpers) {
  Term list = Term::List({Term::Const(Value::Int(1)),
                          Term::Const(Value::Int(2))});
  EXPECT_TRUE(list.IsCons());
  EXPECT_EQ(list.ToString(), "[1, 2]");
  EXPECT_TRUE(Term::Nil().IsNil());
}

TEST(TermTest, ToStringRendering) {
  Term t = Term::Make("state", {Term::Var("M"), Term::Atom("on_gel")});
  EXPECT_EQ(t.ToString(), "state(M, on_gel)");
  Term partial = Term::Cons(Term::Const(Value::Int(1)), Term::Var("T"));
  EXPECT_EQ(partial.ToString(), "[1|T]");
}

TEST(TermTest, CompareTotalOrder) {
  EXPECT_EQ(Term::Compare(Term::Atom("a"), Term::Atom("a")), 0);
  EXPECT_LT(Term::Compare(Term::Atom("a"), Term::Atom("b")), 0);
  EXPECT_NE(Term::Compare(Term::Atom("a"), Term::Const(Value::String("a"))),
            0);
}

// ---- Parser ----------------------------------------------------------------

TEST(ParserTest, ParsesFactsAndRules) {
  auto clauses = Parser::ParseProgram(
      "parent(tom, bob).\n"
      "grandparent(X, Z) <- parent(X, Y), parent(Y, Z).\n"
      "% a comment\n"
      "sibling(A, B) :- parent(P, A), parent(P, B), A \\= B.\n");
  ASSERT_TRUE(clauses.ok()) << clauses.status().ToString();
  ASSERT_EQ(clauses->size(), 3u);
  EXPECT_EQ((*clauses)[0].head.ToString(), "parent(tom, bob)");
  EXPECT_TRUE((*clauses)[0].body.empty());
  EXPECT_EQ((*clauses)[1].body.size(), 2u);
  EXPECT_EQ((*clauses)[2].body.size(), 3u);
}

TEST(ParserTest, ParsesLiteralsOfEveryKind) {
  auto t = Parser::ParseTerm("f(42, 3.5, \"text\", #17, @99, X, atom, [1|T])");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->arity(), 8u);
  EXPECT_EQ(t->args()[0].value().int_value(), 42);
  EXPECT_DOUBLE_EQ(t->args()[1].value().real_value(), 3.5);
  EXPECT_EQ(t->args()[2].value().string_value(), "text");
  EXPECT_EQ(t->args()[3].value().oid_value().raw, 17u);
  EXPECT_EQ(t->args()[4].value().time_value().micros, 99);
  EXPECT_TRUE(t->args()[5].is_var());
  EXPECT_TRUE(t->args()[6].is_atom());
  EXPECT_TRUE(t->args()[7].IsCons());
}

TEST(ParserTest, ParsesInfixComparisonsAndArith) {
  auto q = Parser::ParseQuery("X is 2 + 3 * 4, X > 10, Y = f(X).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 3u);
  EXPECT_EQ((*q)[0].name(), "is");
  // Precedence: 2 + (3 * 4)
  EXPECT_EQ((*q)[0].args()[1].ToString(), "+(2, *(3, 4))");
  EXPECT_EQ((*q)[1].name(), ">");
  EXPECT_EQ((*q)[2].name(), "=");
}

TEST(ParserTest, NegationSugar) {
  auto q = Parser::ParseQuery("\\+ state(M, done)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)[0].name(), "not");
}

TEST(ParserTest, EmptyAndNestedLists) {
  auto t = Parser::ParseTerm("[[], [a, b], [1|[2|[]]]]");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "[[], [a, b], [1, 2]]");
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parser::ParseProgram("foo(").ok());
  EXPECT_FALSE(Parser::ParseProgram("foo) .").ok());
  EXPECT_FALSE(Parser::ParseProgram("\"unterminated").ok());
  EXPECT_FALSE(Parser::ParseProgram("42 :- foo.").ok());
}

// ---- Unification -------------------------------------------------------------

TEST(UnifyTest, BasicCases) {
  Bindings b;
  EXPECT_TRUE(Unify(Term::Atom("a"), Term::Atom("a"), &b));
  EXPECT_FALSE(Unify(Term::Atom("a"), Term::Atom("b"), &b));
  EXPECT_TRUE(Unify(Term::Var("X"), Term::Atom("a"), &b));
  EXPECT_EQ(b.Resolve(Term::Var("X")).name(), "a");
}

TEST(UnifyTest, CompoundUnification) {
  Bindings b;
  Term lhs = Parser::ParseTerm("f(X, g(Y), Y)").value();
  Term rhs = Parser::ParseTerm("f(1, g(2), Z)").value();
  EXPECT_TRUE(Unify(lhs, rhs, &b));
  EXPECT_EQ(b.Resolve(Term::Var("X")).value().int_value(), 1);
  EXPECT_EQ(b.Resolve(Term::Var("Y")).value().int_value(), 2);
  EXPECT_EQ(b.Resolve(Term::Var("Z")).value().int_value(), 2);
}

TEST(UnifyTest, FailureRestoresBindings) {
  Bindings b;
  Term lhs = Parser::ParseTerm("f(X, a)").value();
  Term rhs = Parser::ParseTerm("f(1, b)").value();
  size_t mark = b.Mark();
  EXPECT_FALSE(Unify(lhs, rhs, &b));
  EXPECT_EQ(b.Mark(), mark);
  EXPECT_EQ(b.Lookup("X"), nullptr);
}

TEST(UnifyTest, TrailUndo) {
  Bindings b;
  size_t mark = b.Mark();
  EXPECT_TRUE(Unify(Term::Var("X"), Term::Atom("a"), &b));
  EXPECT_TRUE(Unify(Term::Var("Y"), Term::Atom("b"), &b));
  b.UndoTo(mark);
  EXPECT_EQ(b.Lookup("X"), nullptr);
  EXPECT_EQ(b.Lookup("Y"), nullptr);
}

// ---- Pure-rules solver --------------------------------------------------------

class RulesSolverTest : public ::testing::Test {
 protected:
  RulesSolverTest() : solver_(nullptr) {
    EXPECT_TRUE(solver_
                    .LoadProgram(
                        "parent(tom, bob).\n"
                        "parent(tom, liz).\n"
                        "parent(bob, ann).\n"
                        "parent(bob, pat).\n"
                        "grandparent(X, Z) <- parent(X, Y), parent(Y, Z).\n"
                        "ancestor(X, Y) <- parent(X, Y).\n"
                        "ancestor(X, Z) <- parent(X, Y), ancestor(Y, Z).\n")
                    .ok());
  }
  Solver solver_;
};

TEST_F(RulesSolverTest, FactsAnswerDirectly) {
  EXPECT_TRUE(solver_.Prove("parent(tom, bob)").value());
  EXPECT_FALSE(solver_.Prove("parent(bob, tom)").value());
}

TEST_F(RulesSolverTest, RuleDerivation) {
  auto sols = solver_.QueryAll("grandparent(tom, Z)");
  ASSERT_TRUE(sols.ok()) << sols.status().ToString();
  ASSERT_EQ(sols->size(), 2u);
  EXPECT_EQ((*sols)[0].vars.at("Z").name(), "ann");
  EXPECT_EQ((*sols)[1].vars.at("Z").name(), "pat");
}

TEST_F(RulesSolverTest, RecursionTerminates) {
  auto sols = solver_.QueryAll("ancestor(tom, Z)");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(sols->size(), 4u);
}

TEST_F(RulesSolverTest, NegationAsFailure) {
  EXPECT_TRUE(solver_.Prove("\\+ parent(ann, X)").value());
  EXPECT_FALSE(solver_.Prove("\\+ parent(tom, X)").value());
}

TEST_F(RulesSolverTest, ArithmeticAndComparison) {
  auto sols = solver_.QueryAll("X is 6 * 7, X > 41, X =< 42, Y is X mod 5");
  ASSERT_TRUE(sols.ok());
  ASSERT_EQ(sols->size(), 1u);
  EXPECT_EQ((*sols)[0].vars.at("X").value().int_value(), 42);
  EXPECT_EQ((*sols)[0].vars.at("Y").value().int_value(), 2);
}

TEST_F(RulesSolverTest, RealArithmetic) {
  auto sols = solver_.QueryAll("X is 1 / 2.0");
  ASSERT_TRUE(sols.ok());
  EXPECT_DOUBLE_EQ((*sols)[0].vars.at("X").value().real_value(), 0.5);
}

TEST_F(RulesSolverTest, DivisionByZeroIsError) {
  EXPECT_FALSE(solver_.Prove("X is 1 / 0").ok());
}

TEST_F(RulesSolverTest, MemberEnumeratesAndChecks) {
  auto sols = solver_.QueryAll("member(X, [a, b, c])");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(sols->size(), 3u);
  EXPECT_TRUE(solver_.Prove("member(b, [a, b, c])").value());
  EXPECT_FALSE(solver_.Prove("member(z, [a, b, c])").value());
}

TEST_F(RulesSolverTest, LengthAndAppend) {
  EXPECT_TRUE(solver_.Prove("length([a, b, c], 3)").value());
  auto sols = solver_.QueryAll("append([1, 2], [3], L)");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ((*sols)[0].vars.at("L").ToString(), "[1, 2, 3]");
  // Split enumeration mode.
  auto splits = solver_.QueryAll("append(A, B, [x, y])");
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 3u);
}

TEST_F(RulesSolverTest, FindallAndSetof) {
  auto sols = solver_.QueryAll("findall(C, parent(bob, C), L)");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ((*sols)[0].vars.at("L").ToString(), "[ann, pat]");
  // setof sorts and dedupes; tom appears as parent twice.
  auto parents = solver_.QueryAll("setof(P, parent(P, X), L)");
  ASSERT_TRUE(parents.ok());
  EXPECT_EQ((*parents)[0].vars.at("L").ToString(), "[bob, tom]");
  // Empty result is the empty set (friendlier than ISO setof).
  auto empty = solver_.QueryAll("setof(P, parent(zzz, P), L)");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ((*empty)[0].vars.at("L").ToString(), "[]");
}

TEST_F(RulesSolverTest, ForallChecksUniversally) {
  EXPECT_TRUE(
      solver_.Prove("forall(parent(tom, C), parent(tom, C))").value());
  // Not every child of tom is a parent.
  EXPECT_FALSE(
      solver_.Prove("forall(parent(tom, C), parent(C, X))").value());
  // Only bob's children have children? bob's children ann,pat have none.
  EXPECT_TRUE(
      solver_.Prove("forall(parent(zzz, C), fail)").value())
      << "vacuous forall must hold";
}

TEST_F(RulesSolverTest, SumMaxMinAggregations) {
  Solver s(nullptr);
  ASSERT_TRUE(s.LoadProgram("score(a, 3). score(b, 5). score(c, 2).\n"
                            "weight(a, 1.5). weight(b, 2.5).\n")
                  .ok());
  auto sum = s.QueryAll("sum(X, score(P, X), T)");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)[0].vars.at("T").value().int_value(), 10);
  auto real_sum = s.QueryAll("sum(W, weight(P, W), T)");
  ASSERT_TRUE(real_sum.ok());
  EXPECT_DOUBLE_EQ((*real_sum)[0].vars.at("T").value().real_value(), 4.0);
  auto mx = s.QueryAll("max_of(X, score(P, X), M)");
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ((*mx)[0].vars.at("M").value().int_value(), 5);
  auto mn = s.QueryAll("min_of(X, score(P, X), M)");
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ((*mn)[0].vars.at("M").value().int_value(), 2);
  // Sum over nothing is 0; extremum over nothing fails.
  auto zero = s.QueryAll("sum(X, score(zzz, X), T)");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ((*zero)[0].vars.at("T").value().int_value(), 0);
  EXPECT_FALSE(s.Prove("max_of(X, score(zzz, X), M)").value());
  // Sum over arithmetic expressions of the solution bindings.
  auto expr = s.QueryAll("sum(X * 2, score(P, X), T)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)[0].vars.at("T").value().int_value(), 20);
}

TEST_F(RulesSolverTest, ListUtilities) {
  auto rev = solver_.QueryAll("reverse([1, 2, 3], R)");
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ((*rev)[0].vars.at("R").ToString(), "[3, 2, 1]");
  EXPECT_TRUE(solver_.Prove("nth1(2, [a, b, c], b)").value());
  EXPECT_FALSE(solver_.Prove("nth1(4, [a, b, c], X)").value());
  auto sorted = solver_.QueryAll("msort([3, 1, 2, 1], S)");
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted)[0].vars.at("S").ToString(), "[1, 1, 2, 3]")
      << "msort keeps duplicates";
}

TEST_F(RulesSolverTest, CountAggregates) {
  auto sols = solver_.QueryAll("count(parent(X, Y), N)");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ((*sols)[0].vars.at("N").value().int_value(), 4);
}

TEST_F(RulesSolverTest, BetweenEnumerates) {
  auto sols = solver_.QueryAll("between(1, 5, X), Y is X * X, Y > 8");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(sols->size(), 3u);  // 3, 4, 5
}

TEST_F(RulesSolverTest, OnceCutsChoicepoints) {
  auto sols = solver_.QueryAll("once(parent(tom, X))");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(sols->size(), 1u);
}

TEST_F(RulesSolverTest, AssertAndRetractDynamicFacts) {
  Solver s(nullptr);
  // Nothing yet; asserting creates the predicate.
  EXPECT_TRUE(s.Prove("assert(flag(a)), assert(flag(b))").value());
  auto flags = s.QueryAll("flag(X)");
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->size(), 2u);
  // Retract the first match; the second remains.
  EXPECT_TRUE(s.Prove("retract(flag(a))").value());
  EXPECT_FALSE(s.Prove("flag(a)").value());
  EXPECT_TRUE(s.Prove("flag(b)").value());
  // Retracting a non-existent fact fails (does not error).
  EXPECT_FALSE(s.Prove("retract(flag(z))").value());
  // Retract with a variable binds it to the removed fact's argument.
  auto which = s.QueryAll("retract(flag(X))");
  ASSERT_TRUE(which.ok());
  ASSERT_EQ(which->size(), 1u);
  EXPECT_EQ((*which)[0].vars.at("X").name(), "b");
  EXPECT_FALSE(s.Prove("flag(X)").value());
}

TEST_F(RulesSolverTest, PaperTransitionIdiom) {
  // The paper's Section 3 example, verbatim in spirit:
  //   transition(M) <- state(M, waiting_for_sequencing),
  //                    test_sequencing_ok(M),
  //                    retract(state(M, waiting_for_sequencing)),
  //                    assert(state(M, waiting_for_incorporation)).
  Solver s(nullptr);
  ASSERT_TRUE(
      s.LoadProgram(
           "dyn_state(m1, waiting_for_sequencing).\n"
           "test_sequencing_ok(M).\n"  // no constraints: always succeeds
           "transition(M) <- dyn_state(M, waiting_for_sequencing), "
           "test_sequencing_ok(M), "
           "retract(dyn_state(M, waiting_for_sequencing)), "
           "assert(dyn_state(M, waiting_for_incorporation)).\n")
          .ok());
  EXPECT_TRUE(s.Prove("transition(m1)").value());
  EXPECT_TRUE(s.Prove("dyn_state(m1, waiting_for_incorporation)").value());
  EXPECT_FALSE(s.Prove("dyn_state(m1, waiting_for_sequencing)").value());
  // A second transition fails: the source state is gone.
  EXPECT_FALSE(s.Prove("transition(m1)").value());
}

TEST_F(RulesSolverTest, AssertDuringRuleIterationIsSafe) {
  Solver s(nullptr);
  ASSERT_TRUE(s.LoadProgram("item(1). item(2).\n"
                            "dup(X) <- item(X), assert(item(99)).\n")
                  .ok());
  // The goal iterates item/1 while its body asserts into item/1; the
  // snapshot semantics must keep this at exactly 2 solutions.
  auto sols = s.QueryAll("dup(X)");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ(sols->size(), 2u);
  auto items = s.QueryAll("item(X)");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 4u);  // 1, 2, 99, 99
}

TEST_F(RulesSolverTest, UnknownPredicateIsError) {
  EXPECT_FALSE(solver_.Prove("no_such_pred(X)").ok());
}

TEST_F(RulesSolverTest, InfiniteRecursionHitsWorkBudget) {
  Solver s(nullptr, Solver::Options{.max_work = 10000});
  ASSERT_TRUE(s.LoadProgram("loop(X) <- loop(X).").ok());
  auto r = s.Prove("loop(1)");
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

// ---- LabBase-backed solver -----------------------------------------------------

class DbSolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mgr_ = std::make_unique<mm::MmManager>("mm");
    base_ =
        labbase::LabBase::Open(mgr_.get(), labbase::LabBaseOptions{}).value();
    db_ = base_->OpenSession();
    solver_ = std::make_unique<Solver>(db_.get());
    // Build a tiny lab through the *query language* itself (paper 8.3).
    ASSERT_TRUE(solver_
                    ->Prove("define_material_class(clone), "
                            "define_material_class(tclone), "
                            "define_state(cl_received), "
                            "define_state(waiting_for_sequencing), "
                            "define_state(waiting_for_incorporation), "
                            "define_step_class(determine_sequence, "
                            "[sequence, error_rate])")
                    .value());
    ASSERT_TRUE(solver_
                    ->Prove("create_material(clone, \"cl-1\", cl_received, M1),"
                            "create_material(tclone, \"tc-1\", "
                            "waiting_for_sequencing, M2),"
                            "create_material(tclone, \"tc-2\", "
                            "waiting_for_sequencing, M3)")
                    .value());
  }

  Oid MaterialByName(const std::string& name) {
    return db_->FindMaterialByName(name).value();
  }

  std::unique_ptr<mm::MmManager> mgr_;
  std::unique_ptr<labbase::LabBase> base_;
  std::unique_ptr<labbase::LabBase::Session> db_;
  std::unique_ptr<Solver> solver_;
};

TEST_F(DbSolverTest, ClassPredicatesEnumerate) {
  auto clones = solver_->QueryAll("clone(X)");
  ASSERT_TRUE(clones.ok()) << clones.status().ToString();
  EXPECT_EQ(clones->size(), 1u);
  auto tclones = solver_->QueryAll("tclone(X)");
  ASSERT_TRUE(tclones.ok());
  EXPECT_EQ(tclones->size(), 2u);
  auto all = solver_->QueryAll("material(X)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(DbSolverTest, MaterialNameLookupBothModes) {
  auto by_name = solver_->QueryAll("material_name(M, \"tc-1\")");
  ASSERT_TRUE(by_name.ok());
  ASSERT_EQ(by_name->size(), 1u);
  Oid m = (*by_name)[0].vars.at("M").value().oid_value();
  EXPECT_EQ(m, MaterialByName("tc-1"));
  auto by_oid =
      solver_->QueryAll("material_name(#" + std::to_string(m.raw) + ", N)");
  ASSERT_TRUE(by_oid.ok());
  EXPECT_EQ((*by_oid)[0].vars.at("N").value().string_value(), "tc-1");
}

TEST_F(DbSolverTest, StateQueryThreeModes) {
  // (bound, free): what state is tc-1 in?
  auto s = solver_->QueryAll("material_name(M, \"tc-1\"), state(M, S)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)[0].vars.at("S").name(), "waiting_for_sequencing");
  // (free, bound): the work-queue query of paper Section 8.1.
  auto queue = solver_->QueryAll("state(M, waiting_for_sequencing)");
  ASSERT_TRUE(queue.ok());
  EXPECT_EQ(queue->size(), 2u);
  // (free, free): enumerate everything.
  auto all = solver_->QueryAll("state(M, S)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(DbSolverTest, RecordStepAndQueryHistory) {
  Oid tc = MaterialByName("tc-1");
  std::string m = "#" + std::to_string(tc.raw);
  ASSERT_TRUE(solver_
                  ->Prove("record_step(determine_sequence, @100, "
                          "[effect(" + m + ", [tag(sequence, \"ACGT\"), "
                          "tag(error_rate, 0.02)], "
                          "waiting_for_incorporation)])")
                  .value());
  auto v = solver_->QueryAll("most_recent(" + m + ", sequence, V)");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0].vars.at("V").value().string_value(), "ACGT");
  EXPECT_TRUE(
      solver_->Prove("state(" + m + ", waiting_for_incorporation)").value());

  // Second sequencing attempt, later valid time.
  ASSERT_TRUE(solver_
                  ->Prove("record_step(determine_sequence, @200, "
                          "[effect(" + m + ", [tag(sequence, \"GGGG\")], "
                          "same)])")
                  .value());
  auto hist = solver_->QueryAll("history(" + m + ", sequence, H)");
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ((*hist)[0].vars.at("H").ToString(),
            "[h(@100, \"ACGT\"), h(@200, \"GGGG\")]");
  auto latest = solver_->QueryAll("most_recent(" + m + ", sequence, V)");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)[0].vars.at("V").value().string_value(), "GGGG");
}

TEST_F(DbSolverTest, StepIntrospection) {
  Oid tc = MaterialByName("tc-2");
  std::string m = "#" + std::to_string(tc.raw);
  ASSERT_TRUE(solver_
                  ->Prove("record_step(determine_sequence, @50, "
                          "[effect(" + m + ", [tag(sequence, \"TTTT\")], "
                          "same)])")
                  .value());
  auto steps = solver_->QueryAll("step(S, determine_sequence, T)");
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 1u);
  EXPECT_EQ((*steps)[0].vars.at("T").value().time_value().micros, 50);
  std::string s =
      "#" + std::to_string((*steps)[0].vars.at("S").value().oid_value().raw);
  EXPECT_TRUE(solver_->Prove("step_material(" + s + ", " + m + ")").value());
  auto tags = solver_->QueryAll("step_tag(" + s + ", M, A, V)");
  ASSERT_TRUE(tags.ok());
  ASSERT_EQ(tags->size(), 1u);
  EXPECT_EQ((*tags)[0].vars.at("A").name(), "sequence");
  EXPECT_TRUE(solver_->Prove("step_version(" + s + ", 0)").value());
}

TEST_F(DbSolverTest, SetsViaQueryLanguage) {
  Oid tc = MaterialByName("tc-1");
  std::string m = "#" + std::to_string(tc.raw);
  ASSERT_TRUE(solver_
                  ->Prove("create_set(\"gel-1\"), add_to_set(\"gel-1\", " + m +
                          ")")
                  .value());
  auto members = solver_->QueryAll("in_set(\"gel-1\", M)");
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members->size(), 1u);
  EXPECT_EQ((*members)[0].vars.at("M").value().oid_value(), tc);
}

TEST_F(DbSolverTest, ViewsOverBasePredicates) {
  // The paper's motivating pattern: a view that is independent of workflow
  // details, defined once over the base predicates.
  ASSERT_TRUE(solver_
                  ->LoadProgram("sequencing_backlog(N) <- "
                                "count(state(M, waiting_for_sequencing), N).\n"
                                "sequenced(M) <- "
                                "most_recent(M, sequence, V).\n")
                  .ok());
  auto backlog = solver_->QueryAll("sequencing_backlog(N)");
  ASSERT_TRUE(backlog.ok());
  EXPECT_EQ((*backlog)[0].vars.at("N").value().int_value(), 2);
  EXPECT_FALSE(solver_->Prove("sequenced(M)").value());
  Oid tc = MaterialByName("tc-1");
  ASSERT_TRUE(solver_
                  ->Prove("record_step(determine_sequence, @10, [effect(#" +
                          std::to_string(tc.raw) +
                          ", [tag(sequence, \"AC\")], same)])")
                  .value());
  EXPECT_TRUE(solver_->Prove("sequenced(M)").value());
}

TEST_F(DbSolverTest, SetofOverDatabase) {
  auto sols = solver_->QueryAll(
      "setof(N, and(tclone(M), material_name(M, N)), L)");
  ASSERT_TRUE(sols.ok()) << sols.status().ToString();
  EXPECT_EQ((*sols)[0].vars.at("L").ToString(), "[\"tc-1\", \"tc-2\"]");
}

TEST_F(DbSolverTest, MaterialClassAndCatalogPredicates) {
  auto cls = solver_->QueryAll(
      "material_name(M, \"tc-1\"), material_class(M, C)");
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ((*cls)[0].vars.at("C").name(), "tclone");
  // Reverse mode: enumerate members of a class.
  auto members = solver_->QueryAll("material_class(M, tclone)");
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 2u);
  // Catalog enumeration.
  auto states = solver_->QueryAll("workflow_state(S)");
  ASSERT_TRUE(states.ok());
  EXPECT_GE(states->size(), 3u);
  EXPECT_TRUE(solver_->Prove("workflow_state(cl_received)").value());
  EXPECT_FALSE(solver_->Prove("workflow_state(bogus)").value());
  auto attrs = solver_->QueryAll("attribute(A)");
  ASSERT_TRUE(attrs.ok());
  EXPECT_GE(attrs->size(), 2u);
  EXPECT_TRUE(solver_->Prove("attribute(sequence)").value());
}

TEST_F(DbSolverTest, TemporalAsOfQueries) {
  Oid tc = MaterialByName("tc-1");
  std::string m = "#" + std::to_string(tc.raw);
  for (int t : {100, 200, 300}) {
    ASSERT_TRUE(solver_
                    ->Prove("record_step(determine_sequence, @" +
                            std::to_string(t) + ", [effect(" + m +
                            ", [tag(sequence, \"v" + std::to_string(t) +
                            "\")], same)])")
                    .value());
  }
  // As-of between 200 and 300 sees v200.
  auto v = solver_->QueryAll("value_at(" + m + ", sequence, @250, V)");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0].vars.at("V").value().string_value(), "v200");
  // Exactly at a boundary sees that entry.
  auto at = solver_->QueryAll("value_at(" + m + ", sequence, @200, V)");
  ASSERT_TRUE(at.ok());
  EXPECT_EQ((*at)[0].vars.at("V").value().string_value(), "v200");
  // Before everything: no solution.
  EXPECT_FALSE(solver_->Prove("value_at(" + m + ", sequence, @50, V)")
                   .value());
  // Range query.
  auto range = solver_->QueryAll("history_between(" + m +
                                 ", sequence, @150, @300, H)");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ((*range)[0].vars.at("H").ToString(),
            "[h(@200, \"v200\"), h(@300, \"v300\")]");
}

TEST_F(DbSolverTest, AsOfQuerySuffixBoundaries) {
  // The whole-query `AS OF @T` suffix pins every temporal predicate to the
  // valid-time horizon T. Boundary cases: exactly at a recorded timestamp,
  // before the first, and after the last.
  Oid tc = MaterialByName("tc-1");
  std::string m = "#" + std::to_string(tc.raw);
  for (int t : {100, 200, 300}) {
    ASSERT_TRUE(solver_
                    ->Prove("record_step(determine_sequence, @" +
                            std::to_string(t) + ", [effect(" + m +
                            ", [tag(sequence, \"v" + std::to_string(t) +
                            "\")], same)])")
                    .value());
  }
  auto value_as_of = [&](const std::string& suffix) {
    return solver_->QueryAll("most_recent(" + m + ", sequence, V)" + suffix);
  };
  // Exactly at a boundary: the entry stamped at T is visible.
  auto at = value_as_of(" AS OF @200");
  ASSERT_TRUE(at.ok()) << at.status().ToString();
  ASSERT_EQ(at->size(), 1u);
  EXPECT_EQ((*at)[0].vars.at("V").value().string_value(), "v200");
  // Between entries rounds down; lowercase keyword spelling works too.
  auto mid = value_as_of(" as of @250");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ((*mid)[0].vars.at("V").value().string_value(), "v200");
  // Before the first entry: no value existed yet, so no solution.
  auto before = value_as_of(" AS OF @50");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->empty());
  // After the last entry: same answer as the un-suffixed query.
  auto after = value_as_of(" AS OF @1000");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0].vars.at("V").value().string_value(), "v300");
  auto now = value_as_of("");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ((*now)[0].vars.at("V").value().string_value(), "v300");

  // history/3 truncates at the horizon.
  auto hist = solver_->QueryAll("history(" + m + ", sequence, H) AS OF @200");
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ((*hist)[0].vars.at("H").ToString(),
            "[h(@100, \"v100\"), h(@200, \"v200\")]");

  // step/3 hides steps recorded after the horizon.
  auto steps = solver_->QueryAll("step(S, determine_sequence, T) AS OF @150");
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 1u);
  EXPECT_EQ((*steps)[0].vars.at("T").value().time_value().micros, 100);

  // An explicit value_at later than the horizon is clamped to it: the
  // query cannot see past its own AS OF.
  auto clamped =
      solver_->QueryAll("value_at(" + m + ", sequence, @300, V) AS OF @200");
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ((*clamped)[0].vars.at("V").value().string_value(), "v200");

  // The horizon is per-query, not sticky on the solver.
  auto again = value_as_of("");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)[0].vars.at("V").value().string_value(), "v300");
}

TEST(ParserTest, AsOfSuffixParsing) {
  auto q = Parser::ParseQueryAsOf("state(M, S) AS OF @123.");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->as_of, 123);
  ASSERT_EQ(q->goals.size(), 1u);
  auto plain = Parser::ParseQueryAsOf("state(M, S).");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->as_of, -1);
  // Clause bodies and plain-query contexts reject the suffix.
  EXPECT_FALSE(Parser::ParseQuery("state(M, S) AS OF @123.").ok());
  // Malformed suffixes.
  EXPECT_FALSE(Parser::ParseQueryAsOf("state(M, S) AS @5.").ok());
  EXPECT_FALSE(Parser::ParseQueryAsOf("state(M, S) AS OF 5.").ok());
  EXPECT_FALSE(Parser::ParseQueryAsOf("state(M, S) AS OF @5 extra.").ok());
}

TEST_F(DbSolverTest, AggregateOverDerivedValues) {
  // Record a few error rates and aggregate them — the paper's report shape.
  for (int i = 1; i <= 3; ++i) {
    std::string name = "tc-" + std::to_string(i % 2 + 1);
    ASSERT_TRUE(solver_
                    ->Prove("material_name(M, \"" + name +
                            "\"), record_step(determine_sequence, @" +
                            std::to_string(i * 10) +
                            ", [effect(M, [tag(error_rate, " +
                            std::to_string(0.01 * i) + ")], same)])")
                    .value());
  }
  auto worst =
      solver_->QueryAll("max_of(E, most_recent(M, error_rate, E), W)");
  ASSERT_TRUE(worst.ok()) << worst.status().ToString();
  ASSERT_EQ(worst->size(), 1u);
  EXPECT_NEAR((*worst)[0].vars.at("W").value().real_value(), 0.03, 1e-9);
}

TEST_F(DbSolverTest, CountingQueriesPerClass) {
  auto sols = solver_->QueryAll("count(tclone(M), N)");
  ASSERT_TRUE(sols.ok());
  EXPECT_EQ((*sols)[0].vars.at("N").value().int_value(), 2);
}

}  // namespace
}  // namespace labflow::query
