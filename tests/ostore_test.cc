#include "ostore/ostore_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/status_macros.h"
#include "tests/test_util.h"

namespace labflow::ostore {
namespace {

using storage::AllocHint;
using storage::ObjectId;
using storage::Txn;
using test::TempDir;

std::unique_ptr<OstoreManager> OpenOstore(const std::string& path,
                                          bool truncate = true,
                                          size_t pool_pages = 256,
                                          int64_t lock_timeout_ms = 200) {
  OstoreOptions opts;
  opts.base.path = path;
  opts.base.buffer_pool_pages = pool_pages;
  opts.base.truncate = truncate;
  opts.lock_timeout_ms = lock_timeout_ms;
  auto r = OstoreManager::Open(opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

Txn* MustBegin(OstoreManager* mgr) {
  auto txn = mgr->Begin();
  EXPECT_TRUE(txn.ok()) << txn.status().ToString();
  return txn.ok() ? txn.value() : nullptr;
}

TEST(OstoreTxnTest, CommitMakesChangesVisible) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  Txn* txn = MustBegin(mgr.get());
  auto id = mgr->Allocate(txn, "committed", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Commit(txn).ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "committed");
  EXPECT_EQ(mgr->stats().txn_commits, 1u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackAllocate) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  Txn* txn = MustBegin(mgr.get());
  auto id = mgr->Allocate(txn, "doomed", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Abort(txn).ok());
  EXPECT_TRUE(mgr->Read(id.value()).status().IsNotFound());
  EXPECT_EQ(mgr->stats().live_objects, 0u);
  EXPECT_EQ(mgr->stats().txn_aborts, 1u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackUpdate) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  auto id = mgr->Allocate("original", AllocHint{});
  ASSERT_TRUE(id.ok());
  Txn* txn = MustBegin(mgr.get());
  ASSERT_TRUE(mgr->Update(txn, id.value(), "scribbled").ok());
  EXPECT_EQ(mgr->Read(txn, id.value()).value(), "scribbled");
  ASSERT_TRUE(mgr->Abort(txn).ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "original");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackFree) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  auto id = mgr->Allocate("keep me", AllocHint{});
  ASSERT_TRUE(id.ok());
  uint64_t live = mgr->stats().live_objects;
  Txn* txn = MustBegin(mgr.get());
  ASSERT_TRUE(mgr->Free(txn, id.value()).ok());
  ASSERT_TRUE(mgr->Abort(txn).ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "keep me");
  EXPECT_EQ(mgr->stats().live_objects, live);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackMixedSequence) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  auto keep = mgr->Allocate("stable", AllocHint{});
  auto mutate = mgr->Allocate("before", AllocHint{});
  auto doomed = mgr->Allocate("doomed", AllocHint{});
  ASSERT_TRUE(keep.ok() && mutate.ok() && doomed.ok());

  Txn* txn = MustBegin(mgr.get());
  ASSERT_TRUE(mgr->Update(txn, mutate.value(), std::string(3000, 'x')).ok());
  // Allocate before the free: a freed slot may be reused by a later
  // allocation, which would make `fresh`'s id ambiguous after rollback.
  auto fresh = mgr->Allocate(txn, "fresh", AllocHint{});
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(mgr->Free(txn, doomed.value()).ok());
  ASSERT_TRUE(mgr->Abort(txn).ok());

  EXPECT_EQ(mgr->Read(keep.value()).value(), "stable");
  EXPECT_EQ(mgr->Read(mutate.value()).value(), "before");
  EXPECT_EQ(mgr->Read(doomed.value()).value(), "doomed");
  EXPECT_TRUE(mgr->Read(fresh.value()).status().IsNotFound());
  EXPECT_EQ(mgr->stats().live_objects, 3u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, TwoHandlesFromOneThreadBothCommit) {
  // The old thread-keyed API forced one transaction per thread; explicit
  // handles allow any number side by side, touching disjoint pages.
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  auto seg2 = mgr->CreateSegment("other");
  ASSERT_TRUE(seg2.ok());
  Txn* t1 = MustBegin(mgr.get());
  Txn* t2 = MustBegin(mgr.get());
  ASSERT_NE(t1, t2);
  auto a = mgr->Allocate(t1, "from t1", AllocHint{});
  AllocHint h2;
  h2.segment = seg2.value();
  auto b = mgr->Allocate(t2, "from t2", h2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(mgr->Commit(t1).ok());
  ASSERT_TRUE(mgr->Commit(t2).ok());
  EXPECT_EQ(mgr->Read(a.value()).value(), "from t1");
  EXPECT_EQ(mgr->Read(b.value()).value(), "from t2");
  EXPECT_EQ(mgr->stats().txn_commits, 2u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, StaleAndForeignHandlesRejected) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  EXPECT_TRUE(mgr->Commit(nullptr).IsInvalidArgument());
  EXPECT_TRUE(mgr->Abort(nullptr).IsInvalidArgument());

  Txn* txn = MustBegin(mgr.get());
  ASSERT_TRUE(mgr->Commit(txn).ok());
  // The handle is dead after commit: both control and data ops reject it.
  EXPECT_TRUE(mgr->Commit(txn).IsInvalidArgument());
  EXPECT_TRUE(mgr->Abort(txn).IsInvalidArgument());
  EXPECT_TRUE(mgr->Allocate(txn, "x", AllocHint{}).status()
                  .IsInvalidArgument());

  // A handle from another manager is foreign.
  auto other = OpenOstore(dir.file("db2"));
  Txn* foreign = MustBegin(other.get());
  EXPECT_TRUE(mgr->Commit(foreign).IsInvalidArgument());
  EXPECT_TRUE(mgr->Read(foreign, ObjectId(1)).status().IsInvalidArgument());
  ASSERT_TRUE(other->Abort(foreign).ok());
  ASSERT_TRUE(other->Close().ok());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, CommittedTxnSurvivesCrash) {
  TempDir dir;
  ObjectId id;
  {
    auto mgr = OpenOstore(dir.file("db"));
    Txn* txn = MustBegin(mgr.get());
    auto r = mgr->Allocate(txn, "durable", AllocHint{});
    ASSERT_TRUE(r.ok());
    id = r.value();
    ASSERT_TRUE(mgr->Commit(txn).ok());
    ASSERT_TRUE(mgr->SimulateCrash().ok());  // no checkpoint
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  auto back = mgr->Read(id);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), "durable");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, UncommittedTxnVanishesAfterCrash) {
  TempDir dir;
  ObjectId committed_id, uncommitted_id;
  {
    auto mgr = OpenOstore(dir.file("db"));
    Txn* t1 = MustBegin(mgr.get());
    auto a = mgr->Allocate(t1, "committed", AllocHint{});
    ASSERT_TRUE(a.ok());
    committed_id = a.value();
    ASSERT_TRUE(mgr->Commit(t1).ok());
    Txn* t2 = MustBegin(mgr.get());
    auto b = mgr->Allocate(t2, "uncommitted", AllocHint{});
    ASSERT_TRUE(b.ok());
    uncommitted_id = b.value();
    ASSERT_TRUE(mgr->SimulateCrash().ok());  // crash mid-transaction
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  EXPECT_EQ(mgr->Read(committed_id).value(), "committed");
  EXPECT_TRUE(mgr->Read(uncommitted_id).status().IsNotFound());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, ManyTxnsReplayInOrder) {
  TempDir dir;
  std::vector<ObjectId> ids;
  {
    auto mgr = OpenOstore(dir.file("db"));
    // Interleave allocations and updates over 50 committed txns.
    for (int t = 0; t < 50; ++t) {
      Txn* txn = MustBegin(mgr.get());
      auto id = mgr->Allocate(txn, "v0-" + std::to_string(t), AllocHint{});
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
      if (t > 0) {
        ASSERT_TRUE(
            mgr->Update(txn, ids[t - 1], "final-" + std::to_string(t - 1))
                .ok());
      }
      ASSERT_TRUE(mgr->Commit(txn).ok());
    }
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  for (int t = 0; t < 49; ++t) {
    auto back = mgr->Read(ids[t]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), "final-" + std::to_string(t));
  }
  EXPECT_EQ(mgr->Read(ids[49]).value(), "v0-49");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, CheckpointTruncatesWal) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  Txn* txn = MustBegin(mgr.get());
  ASSERT_TRUE(mgr->Allocate(txn, std::string(1000, 'w'), AllocHint{}).ok());
  ASSERT_TRUE(mgr->Commit(txn).ok());
  EXPECT_GT(mgr->stats().wal_bytes, 0u);
  ASSERT_TRUE(mgr->Checkpoint().ok());
  EXPECT_EQ(mgr->stats().wal_bytes, 0u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, RecoveryAfterCheckpointPlusMoreTxns) {
  TempDir dir;
  ObjectId old_id, new_id;
  {
    auto mgr = OpenOstore(dir.file("db"));
    auto a = mgr->Allocate("pre-checkpoint", AllocHint{});
    ASSERT_TRUE(a.ok());
    old_id = a.value();
    ASSERT_TRUE(mgr->Checkpoint().ok());
    Txn* txn = MustBegin(mgr.get());
    auto b = mgr->Allocate(txn, "post-checkpoint", AllocHint{});
    ASSERT_TRUE(b.ok());
    new_id = b.value();
    ASSERT_TRUE(mgr->Update(txn, old_id, "updated after checkpoint").ok());
    ASSERT_TRUE(mgr->Commit(txn).ok());
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  EXPECT_EQ(mgr->Read(old_id).value(), "updated after checkpoint");
  EXPECT_EQ(mgr->Read(new_id).value(), "post-checkpoint");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreLockTest, ConcurrentDisjointTxnsBothCommit) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"), true, 256, /*lock_timeout_ms=*/2000);
  std::atomic<int> failures{0};
  auto worker = [&](int which) {
    for (int i = 0; i < 20; ++i) {
      auto txn = mgr->Begin();
      if (!txn.ok()) {
        ++failures;
        return;
      }
      AllocHint hint;
      hint.segment = 0;
      auto id = mgr->Allocate(
          txn.value(), "w" + std::to_string(which) + "-" + std::to_string(i),
          hint);
      if (!id.ok() || !mgr->Commit(txn.value()).ok()) {
        ++failures;
        LABFLOW_IGNORE_STATUS(
            mgr->Abort(txn.value()),
            "best-effort rollback on the failure path; a handle already "
            "invalidated by Commit makes this a no-op");
        return;
      }
    }
  };
  std::thread t1(worker, 1);
  std::thread t2(worker, 2);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr->stats().live_objects, 40u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreLockTest, WriterBlocksWriterUntilCommit) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"), true, 256, /*lock_timeout_ms=*/5000);
  auto id = mgr->Allocate("contended", AllocHint{});
  ASSERT_TRUE(id.ok());

  Txn* writer1 = MustBegin(mgr.get());
  ASSERT_TRUE(mgr->Update(writer1, id.value(), "writer-1").ok());

  std::atomic<bool> second_done{false};
  std::thread t([&] {
    Txn* writer2 = MustBegin(mgr.get());
    ASSERT_TRUE(mgr->Update(writer2, id.value(), "writer-2").ok());
    second_done = true;
    ASSERT_TRUE(mgr->Commit(writer2).ok());
  });
  // Give the second writer time to block on our X lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(second_done.load()) << "second writer must wait for the lock";
  ASSERT_TRUE(mgr->Commit(writer1).ok());
  t.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(mgr->Read(id.value()).value(), "writer-2");
  EXPECT_GT(mgr->stats().lock_waits, 0u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreLockTest, DeadlockResolvedByTimeout) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"), true, 256, /*lock_timeout_ms=*/150);
  // Two objects on two different pages (different segments).
  auto seg2 = mgr->CreateSegment("other");
  ASSERT_TRUE(seg2.ok());
  auto a = mgr->Allocate("a", AllocHint{});
  AllocHint h2;
  h2.segment = seg2.value();
  auto b = mgr->Allocate("b", h2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_NE(a.value().page(), b.value().page());

  std::atomic<int> aborted{0};
  auto worker = [&](ObjectId first, ObjectId second) {
    Txn* txn = MustBegin(mgr.get());
    Status st = mgr->Update(txn, first, "mine");
    if (st.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      st = mgr->Update(txn, second, "mine too");
    }
    if (st.ok()) {
      ASSERT_TRUE(mgr->Commit(txn).ok());
    } else {
      EXPECT_TRUE(st.IsAborted()) << st.ToString();
      ++aborted;
      ASSERT_TRUE(mgr->Abort(txn).ok());
    }
  };
  std::thread t1(worker, a.value(), b.value());
  std::thread t2(worker, b.value(), a.value());
  t1.join();
  t2.join();
  EXPECT_GE(aborted.load(), 1) << "the lock timeout must break the deadlock";
  ASSERT_TRUE(mgr->Close().ok());
}

}  // namespace
}  // namespace labflow::ostore
