#include "ostore/ostore_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/test_util.h"

namespace labflow::ostore {
namespace {

using storage::AllocHint;
using storage::ObjectId;
using test::TempDir;

std::unique_ptr<OstoreManager> OpenOstore(const std::string& path,
                                          bool truncate = true,
                                          size_t pool_pages = 256,
                                          int64_t lock_timeout_ms = 200) {
  OstoreOptions opts;
  opts.base.path = path;
  opts.base.buffer_pool_pages = pool_pages;
  opts.base.truncate = truncate;
  opts.lock_timeout_ms = lock_timeout_ms;
  auto r = OstoreManager::Open(opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(OstoreTxnTest, CommitMakesChangesVisible) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  ASSERT_TRUE(mgr->Begin().ok());
  auto id = mgr->Allocate("committed", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Commit().ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "committed");
  EXPECT_EQ(mgr->stats().txn_commits, 1u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackAllocate) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  ASSERT_TRUE(mgr->Begin().ok());
  auto id = mgr->Allocate("doomed", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Abort().ok());
  EXPECT_TRUE(mgr->Read(id.value()).status().IsNotFound());
  EXPECT_EQ(mgr->stats().live_objects, 0u);
  EXPECT_EQ(mgr->stats().txn_aborts, 1u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackUpdate) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  auto id = mgr->Allocate("original", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mgr->Begin().ok());
  ASSERT_TRUE(mgr->Update(id.value(), "scribbled").ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "scribbled");
  ASSERT_TRUE(mgr->Abort().ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "original");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackFree) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  auto id = mgr->Allocate("keep me", AllocHint{});
  ASSERT_TRUE(id.ok());
  uint64_t live = mgr->stats().live_objects;
  ASSERT_TRUE(mgr->Begin().ok());
  ASSERT_TRUE(mgr->Free(id.value()).ok());
  ASSERT_TRUE(mgr->Abort().ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "keep me");
  EXPECT_EQ(mgr->stats().live_objects, live);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, AbortRollsBackMixedSequence) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  auto keep = mgr->Allocate("stable", AllocHint{});
  auto mutate = mgr->Allocate("before", AllocHint{});
  auto doomed = mgr->Allocate("doomed", AllocHint{});
  ASSERT_TRUE(keep.ok() && mutate.ok() && doomed.ok());

  ASSERT_TRUE(mgr->Begin().ok());
  ASSERT_TRUE(mgr->Update(mutate.value(), std::string(3000, 'x')).ok());
  // Allocate before the free: a freed slot may be reused by a later
  // allocation, which would make `fresh`'s id ambiguous after rollback.
  auto fresh = mgr->Allocate("fresh", AllocHint{});
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(mgr->Free(doomed.value()).ok());
  ASSERT_TRUE(mgr->Abort().ok());

  EXPECT_EQ(mgr->Read(keep.value()).value(), "stable");
  EXPECT_EQ(mgr->Read(mutate.value()).value(), "before");
  EXPECT_EQ(mgr->Read(doomed.value()).value(), "doomed");
  EXPECT_TRUE(mgr->Read(fresh.value()).status().IsNotFound());
  EXPECT_EQ(mgr->stats().live_objects, 3u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, NestedBeginRejected) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  ASSERT_TRUE(mgr->Begin().ok());
  EXPECT_TRUE(mgr->Begin().IsInvalidArgument());
  ASSERT_TRUE(mgr->Commit().ok());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreTxnTest, CommitWithoutBeginRejected) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  EXPECT_TRUE(mgr->Commit().IsInvalidArgument());
  EXPECT_TRUE(mgr->Abort().IsInvalidArgument());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, CommittedTxnSurvivesCrash) {
  TempDir dir;
  ObjectId id;
  {
    auto mgr = OpenOstore(dir.file("db"));
    ASSERT_TRUE(mgr->Begin().ok());
    auto r = mgr->Allocate("durable", AllocHint{});
    ASSERT_TRUE(r.ok());
    id = r.value();
    ASSERT_TRUE(mgr->Commit().ok());
    ASSERT_TRUE(mgr->SimulateCrash().ok());  // no checkpoint
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  auto back = mgr->Read(id);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), "durable");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, UncommittedTxnVanishesAfterCrash) {
  TempDir dir;
  ObjectId committed_id, uncommitted_id;
  {
    auto mgr = OpenOstore(dir.file("db"));
    ASSERT_TRUE(mgr->Begin().ok());
    auto a = mgr->Allocate("committed", AllocHint{});
    ASSERT_TRUE(a.ok());
    committed_id = a.value();
    ASSERT_TRUE(mgr->Commit().ok());
    ASSERT_TRUE(mgr->Begin().ok());
    auto b = mgr->Allocate("uncommitted", AllocHint{});
    ASSERT_TRUE(b.ok());
    uncommitted_id = b.value();
    ASSERT_TRUE(mgr->SimulateCrash().ok());  // crash mid-transaction
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  EXPECT_EQ(mgr->Read(committed_id).value(), "committed");
  EXPECT_TRUE(mgr->Read(uncommitted_id).status().IsNotFound());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, ManyTxnsReplayInOrder) {
  TempDir dir;
  std::vector<ObjectId> ids;
  {
    auto mgr = OpenOstore(dir.file("db"));
    // Interleave allocations and updates over 50 committed txns.
    for (int t = 0; t < 50; ++t) {
      ASSERT_TRUE(mgr->Begin().ok());
      auto id = mgr->Allocate("v0-" + std::to_string(t), AllocHint{});
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
      if (t > 0) {
        ASSERT_TRUE(
            mgr->Update(ids[t - 1], "final-" + std::to_string(t - 1)).ok());
      }
      ASSERT_TRUE(mgr->Commit().ok());
    }
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  for (int t = 0; t < 49; ++t) {
    auto back = mgr->Read(ids[t]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), "final-" + std::to_string(t));
  }
  EXPECT_EQ(mgr->Read(ids[49]).value(), "v0-49");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, CheckpointTruncatesWal) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"));
  ASSERT_TRUE(mgr->Begin().ok());
  ASSERT_TRUE(mgr->Allocate(std::string(1000, 'w'), AllocHint{}).ok());
  ASSERT_TRUE(mgr->Commit().ok());
  EXPECT_GT(mgr->stats().wal_bytes, 0u);
  ASSERT_TRUE(mgr->Checkpoint().ok());
  EXPECT_EQ(mgr->stats().wal_bytes, 0u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreRecoveryTest, RecoveryAfterCheckpointPlusMoreTxns) {
  TempDir dir;
  ObjectId old_id, new_id;
  {
    auto mgr = OpenOstore(dir.file("db"));
    auto a = mgr->Allocate("pre-checkpoint", AllocHint{});
    ASSERT_TRUE(a.ok());
    old_id = a.value();
    ASSERT_TRUE(mgr->Checkpoint().ok());
    ASSERT_TRUE(mgr->Begin().ok());
    auto b = mgr->Allocate("post-checkpoint", AllocHint{});
    ASSERT_TRUE(b.ok());
    new_id = b.value();
    ASSERT_TRUE(mgr->Update(old_id, "updated after checkpoint").ok());
    ASSERT_TRUE(mgr->Commit().ok());
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }
  auto mgr = OpenOstore(dir.file("db"), /*truncate=*/false);
  EXPECT_EQ(mgr->Read(old_id).value(), "updated after checkpoint");
  EXPECT_EQ(mgr->Read(new_id).value(), "post-checkpoint");
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreLockTest, ConcurrentDisjointTxnsBothCommit) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"), true, 256, /*lock_timeout_ms=*/2000);
  std::atomic<int> failures{0};
  auto worker = [&](int which) {
    for (int i = 0; i < 20; ++i) {
      if (!mgr->Begin().ok()) {
        ++failures;
        return;
      }
      AllocHint hint;
      hint.segment = 0;
      auto id = mgr->Allocate(
          "w" + std::to_string(which) + "-" + std::to_string(i), hint);
      if (!id.ok() || !mgr->Commit().ok()) {
        ++failures;
        (void)mgr->Abort();
        return;
      }
    }
  };
  std::thread t1(worker, 1);
  std::thread t2(worker, 2);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr->stats().live_objects, 40u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreLockTest, WriterBlocksWriterUntilCommit) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"), true, 256, /*lock_timeout_ms=*/5000);
  auto id = mgr->Allocate("contended", AllocHint{});
  ASSERT_TRUE(id.ok());

  ASSERT_TRUE(mgr->Begin().ok());
  ASSERT_TRUE(mgr->Update(id.value(), "writer-1").ok());

  std::atomic<bool> second_done{false};
  std::thread t([&] {
    ASSERT_TRUE(mgr->Begin().ok());
    ASSERT_TRUE(mgr->Update(id.value(), "writer-2").ok());
    second_done = true;
    ASSERT_TRUE(mgr->Commit().ok());
  });
  // Give the second writer time to block on our X lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(second_done.load()) << "second writer must wait for the lock";
  ASSERT_TRUE(mgr->Commit().ok());
  t.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(mgr->Read(id.value()).value(), "writer-2");
  EXPECT_GT(mgr->stats().lock_waits, 0u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(OstoreLockTest, DeadlockResolvedByTimeout) {
  TempDir dir;
  auto mgr = OpenOstore(dir.file("db"), true, 256, /*lock_timeout_ms=*/150);
  // Two objects on two different pages (different segments).
  auto seg2 = mgr->CreateSegment("other");
  ASSERT_TRUE(seg2.ok());
  auto a = mgr->Allocate("a", AllocHint{});
  AllocHint h2;
  h2.segment = seg2.value();
  auto b = mgr->Allocate("b", h2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_NE(a.value().page(), b.value().page());

  std::atomic<int> aborted{0};
  auto worker = [&](ObjectId first, ObjectId second) {
    ASSERT_TRUE(mgr->Begin().ok());
    Status st = mgr->Update(first, "mine");
    if (st.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      st = mgr->Update(second, "mine too");
    }
    if (st.ok()) {
      ASSERT_TRUE(mgr->Commit().ok());
    } else {
      EXPECT_TRUE(st.IsAborted()) << st.ToString();
      ++aborted;
      ASSERT_TRUE(mgr->Abort().ok());
    }
  };
  std::thread t1(worker, a.value(), b.value());
  std::thread t2(worker, b.value(), a.value());
  t1.join();
  t2.join();
  EXPECT_GE(aborted.load(), 1) << "the lock timeout must break the deadlock";
  ASSERT_TRUE(mgr->Close().ok());
}

}  // namespace
}  // namespace labflow::ostore
