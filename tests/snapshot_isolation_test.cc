// Randomized concurrent-history isolation checker for MVCC snapshot reads.
//
// N writer threads commit *tagged batches*: each transaction allocates
// `batch` objects whose payload encodes (writer, batch, item). M reader
// threads repeatedly open snapshot transactions and scan the whole store,
// decoding the tags. Snapshot isolation over an append-only history demands
// that every scan observe, for every writer, a *prefix-closed* set of that
// writer's batches:
//
//   - no torn batch: a visible batch contributes exactly `batch` items
//     (a transaction is visible all-or-nothing);
//   - no gap: if batch k is visible, batches 0..k-1 are too (a writer's
//     batches commit in order, so their commit timestamps are ordered);
//   - per-reader monotonicity: a later snapshot sees a superset of the
//     committed batches an earlier one saw.
//
// The check runs over several PRNG seeds that vary batch geometry and
// payload sizes; LABFLOW_SNAPSHOT_SEEDS widens the sweep (default 4),
// mirroring LABFLOW_FAULT_SEEDS in storage_fault_test. The test is
// parametrized over both MVCC backends (OStore and Mm) and is part of the
// TSan phase of scripts/check.sh: the snapshot read path is lock-free by
// design, which is exactly what a race detector should watch.

#include <atomic>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/status_macros.h"
#include "gtest/gtest.h"
#include "storage/storage_manager.h"
#include "tests/test_util.h"

namespace labflow {
namespace {

using storage::AllocHint;
using storage::ObjectId;
using storage::StorageManager;
using storage::Txn;
using test::MakeManager;
using test::ManagerKind;
using test::ManagerKindName;
using test::TempDir;

std::vector<int> SnapshotSeeds() {
  int n = 4;
  if (const char* e = std::getenv("LABFLOW_SNAPSHOT_SEEDS")) {
    n = std::atoi(e);
    if (n < 1) n = 1;
  }
  std::vector<int> seeds;
  for (int i = 1; i <= n; ++i) seeds.push_back(i);
  return seeds;
}

/// Tagged payload: "T|writer|batch|item|" + filler. Untagged objects
/// (preload, roots) are ignored by the checker.
std::string TagPayload(int writer, int batch, int item, size_t filler) {
  std::string s = "T|" + std::to_string(writer) + "|" + std::to_string(batch) +
                  "|" + std::to_string(item) + "|";
  s.append(filler, 'f');
  return s;
}

bool ParseTag(std::string_view data, int* writer, int* batch, int* item) {
  if (data.size() < 2 || data[0] != 'T' || data[1] != '|') return false;
  int fields[3] = {0, 0, 0};
  size_t pos = 2;
  for (int f = 0; f < 3; ++f) {
    size_t bar = data.find('|', pos);
    if (bar == std::string_view::npos) return false;
    fields[f] = std::atoi(std::string(data.substr(pos, bar - pos)).c_str());
    pos = bar + 1;
  }
  *writer = fields[0];
  *batch = fields[1];
  *item = fields[2];
  return true;
}

struct HistoryShape {
  int writers;
  int readers;
  int batches_per_writer;
  int batch;          ///< objects per committed batch
  size_t max_filler;  ///< payload filler is uniform in [0, max_filler]
};

class SnapshotIsolationTest : public ::testing::TestWithParam<ManagerKind> {};

TEST_P(SnapshotIsolationTest, ConcurrentHistoryIsPrefixClosed) {
  for (int seed : SnapshotSeeds()) {
    std::mt19937_64 rng(static_cast<uint64_t>(seed) * 7919 + 1);
    HistoryShape shape;
    shape.writers = 2 + static_cast<int>(rng() % 2);
    shape.readers = 2;
    shape.batches_per_writer = 8 + static_cast<int>(rng() % 8);
    shape.batch = 3 + static_cast<int>(rng() % 5);
    shape.max_filler = 64 + rng() % 200;

    TempDir dir;
    std::unique_ptr<StorageManager> mgr =
        MakeManager(GetParam(), dir.file("db"), /*pool_pages=*/1024);
    ASSERT_NE(mgr, nullptr);

    // Untagged preload the checker must skip over.
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(mgr->Allocate(std::string(48, 'p'), AllocHint{}).ok());
    }
    // Per-writer segments keep the allocation pages disjoint, so writer
    // transactions never conflict and every batch commits exactly once
    // (mm has no rollback, so a retried batch would double-count).
    std::vector<uint16_t> segments;
    for (int w = 0; w < shape.writers; ++w) {
      auto seg_or = mgr->CreateSegment("w" + std::to_string(w));
      ASSERT_TRUE(seg_or.ok()) << seg_or.status().ToString();
      segments.push_back(seg_or.value());
    }

    std::atomic<bool> writers_done{false};
    std::atomic<int> writer_failures{0};
    std::vector<std::string> reader_errors(shape.readers);
    std::atomic<uint64_t> scans{0};

    std::vector<std::thread> threads;
    for (int w = 0; w < shape.writers; ++w) {
      // Seed drawn here, not in the thread: the test-scope rng is shared.
      uint64_t writer_seed = rng() ^ static_cast<uint64_t>(w * 31 + seed);
      threads.emplace_back([&, w, writer_seed] {
        std::mt19937_64 wrng(writer_seed);
        AllocHint hint;
        hint.segment = segments[w];
        storage::TxnRetryOptions retry;
        retry.max_retries = 50;
        retry.jitter_seed = static_cast<uint64_t>(w) + 1;
        for (int b = 0; b < shape.batches_per_writer; ++b) {
          Status st = mgr->RunTransaction(
              [&](Txn* txn) -> Status {
                for (int i = 0; i < shape.batch; ++i) {
                  size_t filler = wrng() % (shape.max_filler + 1);
                  LABFLOW_RETURN_IF_ERROR(
                      mgr->Allocate(txn, TagPayload(w, b, i, filler), hint)
                          .status());
                }
                return Status::OK();
              },
              retry);
          if (!st.ok()) {
            writer_failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (int r = 0; r < shape.readers; ++r) {
      threads.emplace_back([&, r] {
        // Per (reader, writer): highest contiguous batch count seen so far,
        // for the monotonicity check.
        std::map<int, int> prev_prefix;
        auto fail = [&](const std::string& why) {
          if (reader_errors[r].empty()) reader_errors[r] = why;
        };
        do {
          auto txn_or = mgr->Begin(/*snapshot=*/true);
          if (!txn_or.ok()) {
            fail("Begin(snapshot): " + txn_or.status().ToString());
            return;
          }
          Txn* txn = txn_or.value();
          EXPECT_TRUE(txn->is_snapshot());
          // items[w][b] = number of objects of (w, b) in this scan.
          std::map<int, std::map<int, int>> items;
          Status st = mgr->ScanAll(
              txn, [&](ObjectId, std::string_view data) -> Status {
                int w = 0, b = 0, i = 0;
                if (ParseTag(data, &w, &b, &i)) ++items[w][b];
                return Status::OK();
              });
          if (!st.ok()) {
            fail("snapshot ScanAll: " + st.ToString());
            LABFLOW_IGNORE_STATUS(mgr->Abort(txn),
                                  "snapshot close is best-effort here");
            return;
          }
          if (!mgr->Commit(txn).ok()) {
            fail("snapshot Commit");
            return;
          }
          for (const auto& [w, batches] : items) {
            int prefix = 0;
            for (const auto& [b, count] : batches) {
              if (count != shape.batch) {
                fail("torn batch: writer " + std::to_string(w) + " batch " +
                     std::to_string(b) + " shows " + std::to_string(count) +
                     "/" + std::to_string(shape.batch) + " items");
                return;
              }
              if (b != prefix) {
                fail("gap: writer " + std::to_string(w) + " batch " +
                     std::to_string(b) + " visible but batch " +
                     std::to_string(prefix) + " is not");
                return;
              }
              ++prefix;
            }
            if (prefix < prev_prefix[w]) {
              fail("regression: writer " + std::to_string(w) +
                   " shrank from " + std::to_string(prev_prefix[w]) + " to " +
                   std::to_string(prefix) + " batches");
              return;
            }
            prev_prefix[w] = prefix;
          }
          scans.fetch_add(1);
        } while (!writers_done.load());
      });
    }
    for (int w = 0; w < shape.writers; ++w) threads[w].join();
    writers_done.store(true);
    for (size_t t = shape.writers; t < threads.size(); ++t) threads[t].join();

    EXPECT_EQ(writer_failures.load(), 0) << "seed " << seed;
    for (int r = 0; r < shape.readers; ++r) {
      EXPECT_TRUE(reader_errors[r].empty())
          << "seed " << seed << " reader " << r << ": " << reader_errors[r];
    }
    EXPECT_GT(scans.load(), 0u) << "seed " << seed;

    // The acceptance gate, asserted here and not just in the benches:
    // snapshot readers take no page locks, so nothing in this workload may
    // register a blocked shared request or a shared-request deadlock
    // (writers only allocate, which locks pages exclusively).
    storage::StorageStats stats = mgr->stats();
    EXPECT_EQ(stats.reader_lock_waits, 0u) << "seed " << seed;
    EXPECT_EQ(stats.reader_deadlocks, 0u) << "seed " << seed;
    EXPECT_GT(stats.snapshots_opened, 0u) << "seed " << seed;

    // Quiesced final check: one last snapshot must see the complete
    // history — every writer's full prefix.
    {
      auto txn_or = mgr->Begin(/*snapshot=*/true);
      ASSERT_TRUE(txn_or.ok());
      std::map<int, std::map<int, int>> items;
      ASSERT_TRUE(mgr->ScanAll(txn_or.value(),
                               [&](ObjectId, std::string_view data) -> Status {
                                 int w = 0, b = 0, i = 0;
                                 if (ParseTag(data, &w, &b, &i)) ++items[w][b];
                                 return Status::OK();
                               })
                      .ok());
      ASSERT_TRUE(mgr->Commit(txn_or.value()).ok());
      ASSERT_EQ(static_cast<int>(items.size()), shape.writers);
      for (const auto& [w, batches] : items) {
        EXPECT_EQ(static_cast<int>(batches.size()), shape.batches_per_writer)
            << "seed " << seed << " writer " << w;
        for (const auto& [b, count] : batches) {
          EXPECT_EQ(count, shape.batch)
              << "seed " << seed << " writer " << w << " batch " << b;
        }
      }
    }
    ASSERT_TRUE(mgr->Close().ok());
  }
}

// Only the MVCC backends: Texas has no snapshot support (Begin(snapshot)
// degrades to an ordinary transaction there, which this checker would
// rightly fail for torn reads under concurrency).
INSTANTIATE_TEST_SUITE_P(Backends, SnapshotIsolationTest,
                         ::testing::Values(ManagerKind::kOstore,
                                           ManagerKind::kMm),
                         [](const ::testing::TestParamInfo<ManagerKind>& info) {
                           return ManagerKindName(info.param);
                         });

}  // namespace
}  // namespace labflow
