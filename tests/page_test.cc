#include "storage/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace labflow::storage {
namespace {

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buf_(kPageSize, '\0'), page_(buf_.data()) {
    page_.Initialize(/*segment=*/3);
  }

  std::vector<char> buf_;
  Page page_;
};

TEST_F(PageTest, FreshPageIsEmpty) {
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.segment(), 3);
  EXPECT_EQ(page_.lsn(), 0u);
  EXPECT_TRUE(page_.IsInitialized());
  EXPECT_GT(page_.FreeForInsert(), kPageSize - 64);
}

TEST_F(PageTest, ZeroedBufferIsNotInitialized) {
  std::vector<char> raw(kPageSize, '\0');
  Page p(raw.data());
  EXPECT_FALSE(p.IsInitialized());
}

TEST_F(PageTest, InsertReadRoundtrip) {
  auto slot = page_.Insert("hello world");
  ASSERT_TRUE(slot.ok());
  auto rec = page_.Read(slot.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value(), "hello world");
}

TEST_F(PageTest, MultipleInsertsGetDistinctSlots) {
  auto a = page_.Insert("aaa");
  auto b = page_.Insert("bbb");
  auto c = page_.Insert("ccc");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_NE(b.value(), c.value());
  EXPECT_EQ(page_.Read(a.value()).value(), "aaa");
  EXPECT_EQ(page_.Read(b.value()).value(), "bbb");
  EXPECT_EQ(page_.Read(c.value()).value(), "ccc");
}

TEST_F(PageTest, DeleteThenReadFails) {
  auto slot = page_.Insert("gone");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page_.Delete(slot.value()).ok());
  EXPECT_TRUE(page_.Read(slot.value()).status().IsNotFound());
  EXPECT_FALSE(page_.IsLive(slot.value()));
}

TEST_F(PageTest, DeleteDeadSlotFails) {
  auto slot = page_.Insert("x");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page_.Delete(slot.value()).ok());
  EXPECT_TRUE(page_.Delete(slot.value()).IsNotFound());
}

TEST_F(PageTest, SlotReuseAfterDelete) {
  auto a = page_.Insert("first");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(page_.Delete(a.value()).ok());
  auto b = page_.Insert("second");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(page_.Read(b.value()).value(), "second");
}

TEST_F(PageTest, UpdateShrinkInPlace) {
  auto slot = page_.Insert("a longer record");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page_.Update(slot.value(), "tiny").ok());
  EXPECT_EQ(page_.Read(slot.value()).value(), "tiny");
}

TEST_F(PageTest, UpdateGrow) {
  auto slot = page_.Insert("tiny");
  ASSERT_TRUE(slot.ok());
  std::string big(500, 'x');
  ASSERT_TRUE(page_.Update(slot.value(), big).ok());
  EXPECT_EQ(page_.Read(slot.value()).value(), big);
}

TEST_F(PageTest, UpdatePreservesOtherRecords) {
  auto a = page_.Insert("alpha");
  auto b = page_.Insert("beta");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(page_.Update(a.value(), std::string(300, 'z')).ok());
  EXPECT_EQ(page_.Read(b.value()).value(), "beta");
}

TEST_F(PageTest, InsertTooLargeRejected) {
  std::string huge(kPageSize, 'x');
  EXPECT_TRUE(page_.Insert(huge).status().IsInvalidArgument());
}

TEST_F(PageTest, FillPageUntilExhausted) {
  std::string rec(100, 'r');
  int inserted = 0;
  while (true) {
    auto slot = page_.Insert(rec);
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  // 8 KiB / (100 bytes + 4-byte slot) ~= 78 records.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
}

TEST_F(PageTest, CompactionReclaimsHoles) {
  // Fill the page, delete every other record, then insert records that only
  // fit if the holes are coalesced.
  std::string rec(100, 'r');
  std::vector<uint16_t> slots;
  while (true) {
    auto slot = page_.Insert(rec);
    if (!slot.ok()) break;
    slots.push_back(slot.value());
  }
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Delete(slots[i]).ok());
  }
  // Freed ~half the page; a 300-byte record needs compaction to fit in the
  // scattered 100-byte holes.
  std::string big(300, 'B');
  auto slot = page_.Insert(big);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_EQ(page_.Read(slot.value()).value(), big);
  // Survivors intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(page_.Read(slots[i]).value(), rec);
  }
}

TEST_F(PageTest, InsertAtSpecificSlot) {
  ASSERT_TRUE(page_.InsertAt(5, "at five").ok());
  EXPECT_EQ(page_.slot_count(), 6);
  EXPECT_EQ(page_.Read(5).value(), "at five");
  for (uint16_t s = 0; s < 5; ++s) EXPECT_FALSE(page_.IsLive(s));
}

TEST_F(PageTest, InsertAtOccupiedSlotFails) {
  ASSERT_TRUE(page_.InsertAt(0, "first").ok());
  EXPECT_TRUE(page_.InsertAt(0, "second").IsAlreadyExists());
}

TEST_F(PageTest, LsnRoundtrip) {
  page_.set_lsn(0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(page_.lsn(), 0xDEADBEEFCAFEF00DULL);
}

TEST_F(PageTest, LiveBytesTracksRecords) {
  EXPECT_EQ(page_.LiveBytes(), 0u);
  auto a = page_.Insert(std::string(10, 'a'));
  auto b = page_.Insert(std::string(20, 'b'));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(page_.LiveBytes(), 30u);
  ASSERT_TRUE(page_.Delete(a.value()).ok());
  EXPECT_EQ(page_.LiveBytes(), 20u);
}

// Property sweep: random insert/delete/update sequences preserve a shadow
// model of the page.
class PagePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PagePropertyTest, MatchesShadowModel) {
  std::vector<char> buf(kPageSize, '\0');
  Page page(buf.data());
  page.Initialize(0);
  uint64_t seed = static_cast<uint64_t>(GetParam());
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  std::vector<std::pair<uint16_t, std::string>> shadow;  // slot -> contents
  for (int step = 0; step < 500; ++step) {
    int action = next() % 3;
    if (action == 0 || shadow.empty()) {
      std::string rec(1 + next() % 200, static_cast<char>('a' + next() % 26));
      auto slot = page.Insert(rec);
      if (slot.ok()) shadow.emplace_back(slot.value(), rec);
    } else if (action == 1) {
      size_t pick = next() % shadow.size();
      ASSERT_TRUE(page.Delete(shadow[pick].first).ok());
      shadow.erase(shadow.begin() + pick);
    } else {
      size_t pick = next() % shadow.size();
      std::string rec(1 + next() % 200, static_cast<char>('A' + next() % 26));
      Status st = page.Update(shadow[pick].first, rec);
      if (st.ok()) shadow[pick].second = rec;
    }
    for (const auto& [slot, contents] : shadow) {
      auto rec = page.Read(slot);
      ASSERT_TRUE(rec.ok());
      ASSERT_EQ(rec.value(), contents) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagePropertyTest,
                         ::testing::Values(1, 2, 3, 7, 42, 1996));

}  // namespace
}  // namespace labflow::storage
