// Concurrency smoke tests: many threads, each with its own explicit Txn
// handle (or session), against a single manager. These are the tests meant
// to run under -fsanitize=thread (see scripts/check.sh): they assert only
// coarse outcomes — counts, visibility, status codes — and exist mainly so
// TSan can watch the locking.

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "common/status_macros.h"
#include "gtest/gtest.h"
#include "labbase/labbase.h"
#include "ostore/ostore_manager.h"
#include "storage/storage_manager.h"
#include "tests/test_util.h"

namespace labflow {
namespace {

using storage::AllocHint;
using storage::ObjectId;
using storage::StorageManager;
using storage::Txn;
using test::MakeManager;
using test::ManagerKind;
using test::ManagerKindName;
using test::TempDir;

constexpr int kThreads = 4;
constexpr int kTxnsPerThread = 16;

/// Begin() with retry: managers with a concurrency cap (Texas admits one
/// transaction at a time) return ResourceExhausted while the slot is taken,
/// which a multi-client smoke test must treat as "wait", not "fail".
Txn* BeginWithRetry(StorageManager* mgr) {
  for (;;) {
    auto txn_or = mgr->Begin();
    if (txn_or.ok()) return txn_or.value();
    if (!txn_or.status().IsResourceExhausted()) return nullptr;
    std::this_thread::yield();
  }
}

class ConcurrencySmokeTest : public ::testing::TestWithParam<ManagerKind> {
 protected:
  void SetUp() override {
    mgr_ = MakeManager(GetParam(), dir_.file("db"), /*pool_pages=*/1024);
    ASSERT_NE(mgr_, nullptr);
  }
  void TearDown() override {
    if (mgr_) ASSERT_TRUE(mgr_->Close().ok());
  }

  TempDir dir_;
  std::unique_ptr<StorageManager> mgr_;
};

TEST_P(ConcurrencySmokeTest, DisjointWritersAllCommit) {
  // N threads, each running short allocate+update transactions on its own
  // data. Nothing conflicts, so every transaction must commit.
  std::atomic<uint64_t> commits{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        Txn* txn = BeginWithRetry(mgr_.get());
        if (txn == nullptr) {
          failures.fetch_add(1);
          return;
        }
        std::string payload(64, static_cast<char>('a' + t));
        auto id_or = mgr_->Allocate(txn, payload, AllocHint{});
        if (!id_or.ok() || !mgr_->Update(txn, id_or.value(), payload).ok() ||
            !mgr_->Commit(txn).ok()) {
          LABFLOW_IGNORE_STATUS(
              mgr_->Abort(txn),
              "best-effort rollback on the failure path; a handle already "
              "invalidated by Commit makes this a no-op");
          failures.fetch_add(1);
          return;
        }
        commits.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(commits.load(), kThreads * kTxnsPerThread);
  auto stats = mgr_->stats();
  EXPECT_EQ(stats.live_objects,
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  EXPECT_GE(stats.txn_commits, static_cast<uint64_t>(kThreads) *
                                   kTxnsPerThread);
}

TEST_P(ConcurrencySmokeTest, AutoCommitFromManyThreads) {
  // nullptr-txn (auto-commit) operations never take a concurrency slot and
  // must be safe from any number of threads on every manager.
  std::atomic<int> failures{0};
  std::vector<ObjectId> per_thread_first(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto id_or = mgr_->Allocate(std::string(32, 'a'), AllocHint{});
        if (!id_or.ok() || !mgr_->Read(id_or.value()).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (i == 0) per_thread_first[t] = id_or.value();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr_->stats().live_objects,
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(mgr_->Read(per_thread_first[t]).ok());
  }
}

TEST_P(ConcurrencySmokeTest, ConcurrencyCapIsEnforcedOrAbsent) {
  Txn* first = BeginWithRetry(mgr_.get());
  ASSERT_NE(first, nullptr);
  auto second = mgr_->Begin();
  if (GetParam() == ManagerKind::kTexas) {
    // "Texas does not support concurrent access": the slot is taken.
    EXPECT_TRUE(second.status().IsResourceExhausted())
        << second.status().ToString();
  } else {
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_TRUE(mgr_->Commit(second.value()).ok());
  }
  EXPECT_TRUE(mgr_->Commit(first).ok());
  // With the slot free again, Begin succeeds everywhere.
  auto third = mgr_->Begin();
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(mgr_->Commit(third.value()).ok());
}

TEST_P(ConcurrencySmokeTest, SnapshotChecksumMatches2plAfterQuiesce) {
  // Equivalence gate for the MVCC read path: run a seeded concurrent
  // workload, quiesce, then read the whole store twice — once through an
  // ordinary 2PL transaction and once through a snapshot — and fold each
  // into an order-independent checksum. The two views must be identical:
  // snapshots change *when* reads are consistent, never *what* a quiesced
  // store contains. (On managers without snapshot support the snapshot
  // handle degrades to a 2PL transaction and the gate holds trivially.)
  std::mt19937_64 seed_rng(0x1ab ^ 42);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    uint64_t thread_seed = seed_rng();
    workers.emplace_back([&, t, thread_seed] {
      std::mt19937_64 rng(thread_seed);
      std::vector<ObjectId> mine;
      for (int i = 0; i < kTxnsPerThread; ++i) {
        // One object per transaction (allocate, or update an earlier one):
        // single-lock transactions cannot form deadlock cycles, so a
        // bounded retry loop only ever absorbs lock-timeout noise.
        for (int attempt = 0;; ++attempt) {
          Txn* txn = BeginWithRetry(mgr_.get());
          if (txn == nullptr) {
            failures.fetch_add(1);
            return;
          }
          Status st;
          std::string payload(32 + rng() % 96,
                              static_cast<char>('a' + (rng() % 26)));
          if (mine.empty() || rng() % 3 == 0) {
            auto id_or = mgr_->Allocate(txn, payload, AllocHint{});
            st = id_or.status();
            if (st.ok()) mine.push_back(id_or.value());
          } else {
            st = mgr_->Update(txn, mine[rng() % mine.size()], payload);
          }
          if (st.ok()) st = mgr_->Commit(txn);
          if (st.ok()) break;
          LABFLOW_IGNORE_STATUS(
              mgr_->Abort(txn),
              "best-effort rollback on the failure path; a handle already "
              "invalidated by Commit makes this a no-op");
          if (attempt >= 20) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);

  auto checksum_with = [&](bool snapshot) -> uint64_t {
    auto txn_or = mgr_->Begin(snapshot);
    EXPECT_TRUE(txn_or.ok());
    if (!txn_or.ok()) return 0;
    uint64_t sum = 0;
    Status st = mgr_->ScanAll(
        txn_or.value(), [&](ObjectId id, std::string_view data) -> Status {
          uint64_t h = 14695981039346656037ULL ^ id.raw;
          for (char c : data) {
            h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
          }
          sum ^= h;
          return Status::OK();
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(mgr_->Commit(txn_or.value()).ok());
    return sum;
  };
  uint64_t locked = checksum_with(/*snapshot=*/false);
  uint64_t snap = checksum_with(/*snapshot=*/true);
  EXPECT_EQ(locked, snap);
  EXPECT_NE(snap, 0u);

  // The acceptance gate from the benches, asserted in a test: nothing in
  // this workload makes a shared lock request that waits — writers lock
  // for-update, snapshot reads are lock-free, and the 2PL scan above ran
  // against a quiesced store.
  storage::StorageStats stats = mgr_->stats();
  EXPECT_EQ(stats.reader_lock_waits, 0u);
  EXPECT_EQ(stats.reader_deadlocks, 0u);
  if (GetParam() != ManagerKind::kTexas) {
    EXPECT_GT(stats.snapshots_opened, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllManagers, ConcurrencySmokeTest,
                         ::testing::Values(ManagerKind::kOstore,
                                           ManagerKind::kTexas,
                                           ManagerKind::kMm),
                         [](const auto& info) {
                           return ManagerKindName(info.param);
                         });

TEST(OstoreSharedHotSetTest, NoTransactionIsLost) {
  // All threads hammer the same two objects under 2PL with a short deadlock
  // timeout: some transactions abort, but commits + aborts must equal the
  // submitted count and the objects stay readable.
  TempDir dir;
  ostore::OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.buffer_pool_pages = 1024;
  opts.lock_timeout_ms = 10;
  auto mgr_or = ostore::OstoreManager::Open(opts);
  ASSERT_TRUE(mgr_or.ok());
  auto mgr = std::move(mgr_or).value();

  auto a = mgr->Allocate(std::string(64, 'a'), AllocHint{});
  ASSERT_TRUE(a.ok());
  // Push the second hot object onto a different page so lock ordering
  // actually matters.
  ASSERT_TRUE(mgr->Allocate(std::string(7000, 'f'), AllocHint{}).ok());
  auto b = mgr->Allocate(std::string(64, 'b'), AllocHint{});
  ASSERT_TRUE(b.ok());
  const ObjectId hot[2] = {a.value(), b.value()};

  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn_or = mgr->Begin();
        ASSERT_TRUE(txn_or.ok());
        Txn* txn = txn_or.value();
        // Opposite orders on alternating threads: deadlock-prone by design.
        int first = (t + i) % 2;
        Status st = mgr->Update(txn, hot[first], std::string(64, 'x'));
        if (st.ok()) st = mgr->Update(txn, hot[1 - first], std::string(64, 'y'));
        if (st.ok() && mgr->Commit(txn).ok()) {
          commits.fetch_add(1);
        } else {
          LABFLOW_IGNORE_STATUS(
              mgr->Abort(txn),
              "best-effort rollback on the failure path; a handle already "
              "invalidated by Commit makes this a no-op");
          aborts.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(commits.load() + aborts.load(),
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  EXPECT_GT(commits.load(), 0u);
  EXPECT_TRUE(mgr->Read(hot[0]).ok());
  EXPECT_TRUE(mgr->Read(hot[1]).ok());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(GroupCommitDurabilityTest, SyncCommitsSurviveCrashAndReopen) {
  // N threads commit through LabBase sessions with sync_commit on, so their
  // WAL groups are coalesced by the commit queue (a grace window makes
  // multi-frame batches near-certain). The process then "crashes" — dirty
  // pages vanish, only the synced WAL survives — and after reopen every
  // acknowledged commit must be visible: group commit must not lose or
  // reorder commits it acknowledged.
  TempDir dir;
  ostore::OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.buffer_pool_pages = 1024;
  opts.sync_commit = true;
  opts.wal_max_group_wait_us = 2000;
  auto mgr_or = ostore::OstoreManager::Open(opts);
  ASSERT_TRUE(mgr_or.ok());
  auto mgr = std::move(mgr_or).value();
  auto db = labbase::LabBase::Open(mgr.get(), labbase::LabBaseOptions{})
                .value();

  labbase::ClassId clone;
  labbase::StateId active;
  {
    auto admin = db->OpenSession();
    clone = admin->DefineMaterialClass("clone").value();
    active = admin->DefineState("active").value();
  }

  constexpr int kPerSession = 8;
  std::atomic<uint64_t> committed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = db->OpenSession();
      for (int i = 0; i < kPerSession; ++i) {
        if (!session->Begin().ok()) {
          failures.fetch_add(1);
          return;
        }
        std::string name = "m-" + std::to_string(t) + "-" + std::to_string(i);
        auto m = session->CreateMaterial(clone, name, active, Timestamp(i));
        if (m.ok() && session->Commit().ok()) {
          committed.fetch_add(1);
        } else {
          LABFLOW_IGNORE_STATUS(
              session->Abort(),
              "best-effort rollback on the failure path; a handle already "
              "invalidated by Commit makes this a no-op");
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_EQ(committed.load(), static_cast<uint64_t>(kThreads) * kPerSession);
  auto stats = mgr->stats();
  EXPECT_GT(stats.wal_group_syncs, 0u);
  EXPECT_GE(stats.wal_frames, committed.load());

  db.reset();
  ASSERT_TRUE(mgr->SimulateCrash().ok());
  mgr.reset();

  opts.base.truncate = false;
  auto reopened_or = ostore::OstoreManager::Open(opts);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  auto db2 = labbase::LabBase::Open(reopened.get(), labbase::LabBaseOptions{})
                 .value();
  auto check = db2->OpenSession();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerSession; ++i) {
      std::string name = "m-" + std::to_string(t) + "-" + std::to_string(i);
      auto found = check->FindMaterialByName(name);
      EXPECT_TRUE(found.ok())
          << "acknowledged commit lost: " << name << " — "
          << found.status().ToString();
    }
  }
  auto count = check->CountInState(active);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(),
            static_cast<int64_t>(kThreads) * kPerSession);
  check.reset();
  db2.reset();
  ASSERT_TRUE(reopened->Close().ok());
}

TEST(LabBaseSessionConcurrencyTest, SessionsCommitDisjointMaterials) {
  // N LabBase sessions on their own threads, each creating its own
  // materials inside explicit transactions. The shared name directory and
  // state index must end up consistent.
  TempDir dir;
  ostore::OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.buffer_pool_pages = 1024;
  auto mgr_or = ostore::OstoreManager::Open(opts);
  ASSERT_TRUE(mgr_or.ok());
  auto mgr = std::move(mgr_or).value();
  auto db_or = labbase::LabBase::Open(mgr.get(), labbase::LabBaseOptions{});
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(db_or).value();

  labbase::ClassId clone;
  labbase::StateId active;
  {
    auto admin = db->OpenSession();
    auto c = admin->DefineMaterialClass("clone");
    ASSERT_TRUE(c.ok());
    clone = c.value();
    auto s = admin->DefineState("active");
    ASSERT_TRUE(s.ok());
    active = s.value();
  }

  constexpr int kPerSession = 12;
  std::atomic<uint64_t> commits{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = db->OpenSession();
      for (int i = 0; i < kPerSession; ++i) {
        if (!session->Begin().ok()) {
          failures.fetch_add(1);
          return;
        }
        std::string name =
            "m-" + std::to_string(t) + "-" + std::to_string(i);
        auto m = session->CreateMaterial(clone, name, active, Timestamp(i));
        if (m.ok() && session->Commit().ok()) {
          commits.fetch_add(1);
        } else {
          LABFLOW_IGNORE_STATUS(
              session->Abort(),
              "best-effort rollback on the failure path; a handle already "
              "invalidated by Commit makes this a no-op");
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(commits.load(), static_cast<uint64_t>(kThreads) * kPerSession);

  auto check = db->OpenSession();
  auto count = check->CountInState(active);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), static_cast<size_t>(kThreads) * kPerSession);
  for (int t = 0; t < kThreads; ++t) {
    auto found = check->FindMaterialByName("m-" + std::to_string(t) + "-0");
    EXPECT_TRUE(found.ok()) << found.status().ToString();
  }
  check.reset();
  db.reset();
  ASSERT_TRUE(mgr->Close().ok());
}

// ---- SessionPool lifecycle --------------------------------------------------
//
// The pool's lifetime contract (labbase.h): every Lease is released before
// the pool is destroyed, and the destructor aborts the process otherwise.
// These tests pin the bookkeeping that labflowd's connection teardown
// depends on.

TEST(SessionPoolLifecycleTest, OutstandingTracksLeases) {
  auto mgr = MakeManager(ManagerKind::kMm, "");
  auto db = std::move(labbase::LabBase::Open(mgr.get(), {}).value());
  labbase::LabBase::SessionPool pool(db.get());
  EXPECT_EQ(pool.outstanding(), 0u);
  {
    auto a = pool.Acquire();
    auto b = pool.Acquire();
    EXPECT_EQ(pool.outstanding(), 2u);
    a.Release();
    EXPECT_EQ(pool.outstanding(), 1u);
    // Release is idempotent.
    a.Release();
    EXPECT_EQ(pool.outstanding(), 1u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  // A discarded (mid-transaction) return still counts the lease back in.
  {
    auto c = pool.Acquire();
    ASSERT_TRUE(c->Begin().ok());
    EXPECT_EQ(pool.outstanding(), 1u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_GE(pool.stats().discarded, 1u);
}

TEST(SessionPoolLifecycleTest, ConcurrentChurnLeavesNoLeaseBehind) {
  // Many threads checking sessions in and out at once: the outstanding
  // count must end at zero and the pool must stay destroyable — this is
  // exactly the shutdown path of a busy labflowd.
  auto mgr = MakeManager(ManagerKind::kMm, "");
  auto db = std::move(labbase::LabBase::Open(mgr.get(), {}).value());

  labbase::ClassId clone;
  labbase::StateId active;
  {
    auto admin = db->OpenSession();
    clone = admin->DefineMaterialClass("clone").value();
    active = admin->DefineState("active").value();
  }

  constexpr int kChurnThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  {
    labbase::LabBase::SessionPool pool(db.get());
    std::vector<std::thread> workers;
    for (int t = 0; t < kChurnThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          auto lease = pool.Acquire();
          if (!lease.valid()) {
            ++failures;
            continue;
          }
          if (i % 3 == 0) {
            // Exercise the mid-transaction discard path.
            if (!lease->Begin().ok()) ++failures;
            continue;  // lease destructor returns it mid-txn
          }
          Status st = lease->RunTransaction([&]() -> Status {
            LABFLOW_ASSIGN_OR_RETURN(
                Oid m, lease->CreateMaterial(
                           clone,
                           "churn-" + std::to_string(t) + "-" +
                               std::to_string(i),
                           active, Timestamp(i)));
            (void)m;
            return Status::OK();
          });
          if (!st.ok()) ++failures;
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(pool.outstanding(), 0u);
    EXPECT_EQ(pool.stats().acquired,
              static_cast<uint64_t>(kChurnThreads) * kIters);
    // Pool destruction here must not abort: all leases are back.
  }
  db.reset();
  ASSERT_TRUE(mgr->Close().ok());
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(SessionPoolDeathTest, DestroyingPoolWithLiveLeaseAborts) {
  // Violating the lifetime contract must die loudly in every build mode,
  // not corrupt the heap later.
  auto mgr = MakeManager(ManagerKind::kMm, "");
  auto db = std::move(labbase::LabBase::Open(mgr.get(), {}).value());
  EXPECT_DEATH(
      {
        auto pool =
            std::make_unique<labbase::LabBase::SessionPool>(db.get());
        auto lease = pool->Acquire();
        pool.reset();  // outstanding lease -> abort
      },
      "outstanding lease");
}
#endif

}  // namespace
}  // namespace labflow
