// End-to-end storage fault tolerance, driven through FaultInjectionEnv.
//
// These tests torture the full stack — Env, PageFile, BufferPool, WAL,
// OstoreManager — with deterministic injected faults and check the
// durability contract from the outside:
//
//   * a commit acknowledged with sync_commit survives any later crash;
//   * a commit reported failed leaves no trace after a crash (no ghost
//     groups resurrected by recovery);
//   * a torn page write or a flipped bit is *detected* (Corruption), never
//     silently returned as data;
//   * after a WAL failure the store degrades to read-only (Unavailable on
//     writes, reads fine) until a checkpoint restores service;
//   * deadlocks are broken by waits-for detection in milliseconds even when
//     the fallback lock timeout is a minute.
//
// The seed sweep width is controlled by LABFLOW_FAULT_SEEDS (default 16);
// scripts/check.sh's `fault` phase widens it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "ostore/ostore_manager.h"
#include "storage/fault_env.h"
#include "tests/test_util.h"

namespace labflow::ostore {
namespace {

using storage::AllocHint;
using storage::FaultInjectionEnv;
using storage::ObjectId;
using test::TempDir;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---- Scenario A: WAL write/sync faults, then crash --------------------------

std::vector<int> FaultSeeds() {
  int n = 16;
  if (const char* e = std::getenv("LABFLOW_FAULT_SEEDS")) {
    n = std::atoi(e);
    if (n < 1) n = 1;
  }
  std::vector<int> seeds;
  for (int i = 1; i <= n; ++i) seeds.push_back(i);
  return seeds;
}

class WalFaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(WalFaultSweep, AckedCommitsSurviveCrashFailedOnesVanish) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  TempDir dir;

  FaultInjectionEnv::Options fopt;
  fopt.seed = seed;
  fopt.write_fault_p = 0.05;
  fopt.sync_fault_p = 0.05;
  fopt.torn_writes = true;
  fopt.path_filter = ".wal";  // fault only the log; page I/O stays clean
  FaultInjectionEnv env(fopt);

  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.env = &env;
  opts.base.truncate = true;
  opts.sync_commit = true;  // every ack is a durability promise
  auto mgr_or = OstoreManager::Open(opts);
  ASSERT_TRUE(mgr_or.ok()) << mgr_or.status().ToString();
  std::unique_ptr<OstoreManager> mgr = std::move(mgr_or).value();

  // A fresh database has written its superblock but synced nothing; the
  // durability contract starts at the first checkpoint (LabBase's bootstrap
  // does the same).
  ASSERT_TRUE(mgr->Checkpoint().ok());

  Rng rng(seed * 7 + 1);
  std::map<uint64_t, std::string> confirmed;  // ack'd commits: must survive
  int failed_commits = 0;

  for (int t = 0; t < 120; ++t) {
    auto txn_or = mgr->Begin();
    ASSERT_TRUE(txn_or.ok());
    storage::Txn* txn = txn_or.value();
    std::map<uint64_t, std::string> pending;
    Status st = Status::OK();
    int ops = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < ops && st.ok(); ++i) {
      std::string data = rng.NextName(1 + rng.NextBelow(500));
      auto id = mgr->Allocate(txn, data, AllocHint{});
      st = id.status();
      if (st.ok()) pending[id.value().raw] = data;
    }
    if (st.ok()) {
      st = mgr->Commit(txn);
      if (st.ok()) {
        confirmed.insert(pending.begin(), pending.end());
        continue;
      }
      // Commit consumed (and rolled back) the handle; nothing to abort.
    } else {
      ASSERT_TRUE(mgr->Abort(txn).ok());
    }
    // A write refusal (degraded mode) or a commit that hit the injected
    // fault. Either way the transaction rolled back; the operator action
    // that restores service is a checkpoint (page I/O is clean here).
    ++failed_commits;
    ASSERT_TRUE(mgr->Checkpoint().ok())
        << "checkpoint after WAL failure (seed " << seed << ")";
  }

  // Power cut: buffered pages vanish, and everything the env never synced
  // vanishes with them.
  ASSERT_TRUE(mgr->SimulateCrash().ok());
  mgr.reset();
  env.DropUnsynced();
  env.set_enabled(false);

  opts.base.truncate = false;
  auto rec_or = OstoreManager::Open(opts);
  ASSERT_TRUE(rec_or.ok()) << "recovery failed (seed " << seed
                           << "): " << rec_or.status().ToString();
  std::unique_ptr<OstoreManager> rec = std::move(rec_or).value();

  // Every acknowledged commit, byte for byte.
  for (const auto& [raw, data] : confirmed) {
    auto back = rec->Read(ObjectId(raw));
    ASSERT_TRUE(back.ok()) << "lost committed object " << raw << " (seed "
                           << seed << ", " << failed_commits
                           << " failed commits): " << back.status().ToString();
    ASSERT_EQ(back.value(), data) << "corrupt object " << raw;
  }
  // And nothing else: a failed commit was rolled back in memory and its
  // group either never reached the log, was torn (checksum), or was never
  // synced (dropped) — recovery must not resurrect it.
  uint64_t live = 0;
  ASSERT_TRUE(rec->ScanAll([&](ObjectId id, std::string_view data) {
                   auto it = confirmed.find(id.raw);
                   EXPECT_NE(it, confirmed.end())
                       << "ghost object " << id.raw << " (seed " << seed
                       << ")";
                   if (it != confirmed.end()) {
                     EXPECT_EQ(std::string(data), it->second);
                   }
                   ++live;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(live, confirmed.size());

  // The survivor is a fully usable database.
  auto post = rec->Begin();
  ASSERT_TRUE(post.ok());
  auto id = rec->Allocate(post.value(), "post-fault", AllocHint{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(rec->Commit(post.value()).ok());
  EXPECT_EQ(rec->Read(id.value()).value(), "post-fault");
  ASSERT_TRUE(rec->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalFaultSweep,
                         ::testing::ValuesIn(FaultSeeds()),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

// ---- Scenario B: torn page writes -------------------------------------------

TEST(StorageFaultTest, TornPageWriteNeverReadsBackAsGarbage) {
  TempDir dir;
  FaultInjectionEnv::Options fopt;
  fopt.seed = 99;
  fopt.write_fault_p = 1.0;
  fopt.torn_writes = true;
  FaultInjectionEnv env(fopt);
  env.set_enabled(false);  // faults armed only around the checkpoint below

  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.env = &env;
  opts.base.truncate = true;
  opts.sync_commit = true;
  std::map<uint64_t, std::string> committed;
  {
    auto mgr = OstoreManager::Open(opts).value();
    ASSERT_TRUE(mgr->Checkpoint().ok());
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
      std::string data = rng.NextName(100 + rng.NextBelow(400));
      auto id = mgr->Allocate(data, AllocHint{});
      ASSERT_TRUE(id.ok());
      committed[id.value().raw] = data;
    }
    // Now every page write tears at a random prefix. The checkpoint's
    // write-back must fail loudly...
    env.set_enabled(true);
    EXPECT_FALSE(mgr->Checkpoint().ok());
    env.set_enabled(false);
    // ...and the process dies with torn bytes on "disk" (no DropUnsynced:
    // this models a tear that really hit the platter).
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }

  opts.base.truncate = false;
  auto rec_or = OstoreManager::Open(opts);
  if (!rec_or.ok()) {
    // Detected at open (superblock or a page touched by WAL replay).
    EXPECT_TRUE(rec_or.status().IsCorruption())
        << rec_or.status().ToString();
    return;
  }
  // If open survived, every object must read back exactly or be *detected*
  // as corrupt — silent garbage is the one forbidden outcome.
  auto rec = std::move(rec_or).value();
  for (const auto& [raw, data] : committed) {
    auto back = rec->Read(ObjectId(raw));
    if (back.ok()) {
      EXPECT_EQ(back.value(), data) << "silent corruption on " << raw;
    } else {
      EXPECT_TRUE(back.status().IsCorruption()) << back.status().ToString();
    }
  }
  ASSERT_TRUE(rec->Close().ok());
}

// ---- Scenario C: read faults surface as errors ------------------------------

TEST(StorageFaultTest, ReadFaultsPropagateAndClear) {
  TempDir dir;
  FaultInjectionEnv::Options fopt;
  fopt.seed = 5;
  fopt.read_fault_p = 1.0;
  FaultInjectionEnv env(fopt);
  env.set_enabled(false);

  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.env = &env;
  opts.base.truncate = true;
  ObjectId id;
  {
    auto mgr = OstoreManager::Open(opts).value();
    auto r = mgr->Allocate("fragile", AllocHint{});
    ASSERT_TRUE(r.ok());
    id = r.value();
    ASSERT_TRUE(mgr->Checkpoint().ok());
    ASSERT_TRUE(mgr->Close().ok());
  }

  // With every read failing, open cannot even load the superblock — and
  // says so, instead of treating the failure as an empty file.
  opts.base.truncate = false;
  env.set_enabled(true);
  auto broken = OstoreManager::Open(opts);
  EXPECT_FALSE(broken.ok());
  env.set_enabled(false);

  auto mgr = OstoreManager::Open(opts).value();
  env.set_enabled(true);
  auto faulted = mgr->Read(id);  // page 1 is not cached yet: hits the file
  EXPECT_FALSE(faulted.ok());
  EXPECT_TRUE(faulted.status().IsIOError()) << faulted.status().ToString();
  env.set_enabled(false);
  EXPECT_EQ(mgr->Read(id).value(), "fragile");
  EXPECT_GE(env.faults_injected(), 2u);
  ASSERT_TRUE(mgr->Close().ok());
}

// ---- Scenario D: deadlock detection -----------------------------------------

TEST(StorageFaultTest, DeadlockBrokenByDetectionNotTimeout) {
  TempDir dir;
  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.truncate = true;
  // The fallback timeout is a full minute: if resolution still depended on
  // it, this test would time out. Detection must break the cycle at block
  // time.
  opts.lock_timeout_ms = 60000;
  auto mgr = OstoreManager::Open(opts).value();

  // Two objects that cannot share a page (4KB each + 4KB filler overflows
  // the 8KB page), so the two lock requests really cross.
  auto a_or = mgr->Allocate(std::string(4000, 'a'), AllocHint{});
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(mgr->Allocate(std::string(4000, 'f'), AllocHint{}).ok());
  auto b_or = mgr->Allocate(std::string(4000, 'b'), AllocHint{});
  ASSERT_TRUE(b_or.ok());
  ObjectId a = a_or.value(), b = b_or.value();
  ASSERT_NE(a.raw >> 16, b.raw >> 16) << "test objects share a page";

  auto start = std::chrono::steady_clock::now();
  std::atomic<int> arrived{0};
  std::atomic<int> committed{0}, aborted{0};
  auto worker = [&](ObjectId first, ObjectId second) {
    auto txn_or = mgr->Begin();
    ASSERT_TRUE(txn_or.ok());
    storage::Txn* txn = txn_or.value();
    Status st = mgr->Update(txn, first, std::string(128, 'w'));
    EXPECT_TRUE(st.ok());
    // Only proceed once both threads hold their first page: the second
    // updates then wait on each other — a certain A→B→A cycle.
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
    if (st.ok()) st = mgr->Update(txn, second, std::string(128, 'v'));
    if (st.ok()) {
      EXPECT_TRUE(mgr->Commit(txn).ok());
      committed.fetch_add(1);
    } else {
      EXPECT_TRUE(st.IsAborted()) << st.ToString();
      EXPECT_TRUE(mgr->Abort(txn).ok());
      aborted.fetch_add(1);
    }
  };
  std::thread t1(worker, a, b);
  std::thread t2(worker, b, a);
  t1.join();
  t2.join();

  // Exactly one victim, chosen and woken in far less than the minute the
  // timeout would have cost.
  EXPECT_EQ(committed.load(), 1);
  EXPECT_EQ(aborted.load(), 1);
  EXPECT_LT(SecondsSince(start), 30.0);
  EXPECT_GE(mgr->stats().deadlocks, 1u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(StorageFaultTest, HighContentionCommitsEverythingViaRetry) {
  TempDir dir;
  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.truncate = true;
  opts.lock_timeout_ms = 60000;  // detection, not the timeout, must resolve
  auto mgr = OstoreManager::Open(opts).value();

  std::vector<ObjectId> hot;
  for (int i = 0; i < 4; ++i) {
    auto id = mgr->Allocate(std::string(128, 'h'), AllocHint{});
    ASSERT_TRUE(id.ok());
    hot.push_back(id.value());
    ASSERT_TRUE(mgr->Allocate(std::string(7000, 'f'), AllocHint{}).ok());
  }

  constexpr int kThreads = 4;
  constexpr int kTxns = 50;
  auto start = std::chrono::steady_clock::now();
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 11);
      storage::TxnRetryOptions retry;
      retry.max_retries = 100;
      retry.jitter_seed = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < kTxns; ++i) {
        Status st = mgr->RunTransaction(
            [&](storage::Txn* txn) -> Status {
              size_t x = rng.NextBelow(hot.size());
              size_t y = rng.NextBelow(hot.size());
              Status s = mgr->Update(txn, hot[x], std::string(128, 'x'));
              if (s.ok() && y != x) {
                s = mgr->Update(txn, hot[y], std::string(128, 'y'));
              }
              return s;
            },
            retry);
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Deadlock aborts are absorbed by the retry loop: the user sees none.
  EXPECT_EQ(failures.load(), 0);
  auto stats = mgr->stats();
  EXPECT_EQ(stats.txn_commits, static_cast<uint64_t>(kThreads) * kTxns);
  // If resolution latency scaled with lock_timeout_ms, one deadlock would
  // already blow this bound.
  EXPECT_LT(SecondsSince(start), 40.0);
  ASSERT_TRUE(mgr->Close().ok());
}

// ---- Scenario E: sticky degradation (writes refused, reads fine) ------------

TEST(StorageFaultTest, WalFailureDegradesToReadOnlyUntilCheckpoint) {
  TempDir dir;
  FaultInjectionEnv::Options fopt;
  fopt.seed = 7;
  fopt.write_fault_p = 1.0;
  fopt.path_filter = ".wal";
  FaultInjectionEnv env(fopt);
  env.set_enabled(false);

  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.env = &env;
  opts.base.truncate = true;
  auto mgr = OstoreManager::Open(opts).value();
  auto keep_or = mgr->Allocate("must stay readable", AllocHint{});
  ASSERT_TRUE(keep_or.ok());
  ObjectId keep = keep_or.value();
  ASSERT_TRUE(mgr->Checkpoint().ok());

  // First failure: the commit hits the injected WAL fault and is rolled
  // back; its error is the genuine I/O failure.
  env.set_enabled(true);
  auto txn_or = mgr->Begin();
  ASSERT_TRUE(txn_or.ok());
  auto doomed = mgr->Allocate(txn_or.value(), "doomed", AllocHint{});
  ASSERT_TRUE(doomed.ok());
  Status st = mgr->Commit(txn_or.value());
  ASSERT_FALSE(st.ok());

  // Degraded mode: every write path refuses with Unavailable...
  Status auto_write = mgr->Allocate("refused", AllocHint{}).status();
  EXPECT_TRUE(auto_write.IsUnavailable()) << auto_write.ToString();
  auto txn2 = mgr->Begin();
  ASSERT_TRUE(txn2.ok());
  Status txn_write = mgr->Update(txn2.value(), keep, "refused");
  EXPECT_TRUE(txn_write.IsUnavailable()) << txn_write.ToString();
  ASSERT_TRUE(mgr->Abort(txn2.value()).ok());
  // ...while reads keep serving, and the failed commit left no trace.
  EXPECT_EQ(mgr->Read(keep).value(), "must stay readable");
  EXPECT_FALSE(mgr->Read(doomed.value()).ok());

  // A checkpoint makes the in-memory image durable without the log and
  // restores write service.
  env.set_enabled(false);
  ASSERT_TRUE(mgr->Checkpoint().ok());
  auto healed = mgr->Allocate("healed", AllocHint{});
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(mgr->Read(healed.value()).value(), "healed");
  ASSERT_TRUE(mgr->Close().ok());
}

// ---- Scenario F: bit rot ----------------------------------------------------

TEST(StorageFaultTest, BitRotDetectedByPageChecksum) {
  TempDir dir;
  FaultInjectionEnv env(FaultInjectionEnv::Options{});

  OstoreOptions opts;
  opts.base.path = dir.file("db");
  opts.base.env = &env;
  opts.base.truncate = true;
  ObjectId id;
  {
    auto mgr = OstoreManager::Open(opts).value();
    auto r = mgr->Allocate(std::string(3000, 'z'), AllocHint{});
    ASSERT_TRUE(r.ok());
    id = r.value();
    ASSERT_TRUE(mgr->Checkpoint().ok());
    ASSERT_TRUE(mgr->Close().ok());
  }

  // One bit of rot in page 1's record area, below any I/O error.
  ASSERT_TRUE(env.CorruptByte(dir.file("db"), storage::kPageSize + 200).ok());

  opts.base.truncate = false;
  auto rec_or = OstoreManager::Open(opts);
  if (!rec_or.ok()) {
    EXPECT_TRUE(rec_or.status().IsCorruption()) << rec_or.status().ToString();
    return;
  }
  auto rec = std::move(rec_or).value();
  auto back = rec->Read(id);
  ASSERT_FALSE(back.ok()) << "bit rot went undetected";
  EXPECT_TRUE(back.status().IsCorruption()) << back.status().ToString();
  EXPECT_GE(rec->stats().checksum_failures, 1u);
  ASSERT_TRUE(rec->Close().ok());
}

}  // namespace
}  // namespace labflow::ostore
