#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "ostore/lock_manager.h"
#include "ostore/wal.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "tests/test_util.h"

namespace labflow {
namespace {

using ostore::LockManager;
using ostore::Wal;
using storage::BufferPool;
using storage::kPageSize;
using storage::PageFile;
using storage::StampPageChecksum;
using test::TempDir;

// ---- PageFile ---------------------------------------------------------------

TEST(PageFileTest, OpenCreatesEmptyFile) {
  TempDir dir;
  PageFile file;
  ASSERT_TRUE(file.Open(dir.file("pf"), true).ok());
  EXPECT_EQ(file.page_count(), 0u);
  EXPECT_EQ(file.SizeBytes(), 0u);
  ASSERT_TRUE(file.Close().ok());
}

TEST(PageFileTest, AppendWriteReadRoundtrip) {
  TempDir dir;
  PageFile file;
  ASSERT_TRUE(file.Open(dir.file("pf"), true).ok());
  auto p0 = file.AppendPage();
  auto p1 = file.AppendPage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(p0.value(), 0u);
  EXPECT_EQ(p1.value(), 1u);

  std::vector<char> out(kPageSize, 'A');
  ASSERT_TRUE(file.WritePage(1, out.data()).ok());
  std::vector<char> in(kPageSize);
  ASSERT_TRUE(file.ReadPage(1, in.data()).ok());
  EXPECT_EQ(in, out);
  // Page 0 still zeroed.
  ASSERT_TRUE(file.ReadPage(0, in.data()).ok());
  EXPECT_EQ(in, std::vector<char>(kPageSize, 0));
  ASSERT_TRUE(file.Close().ok());
}

TEST(PageFileTest, OutOfRangeAccessRejected) {
  TempDir dir;
  PageFile file;
  ASSERT_TRUE(file.Open(dir.file("pf"), true).ok());
  std::vector<char> buf(kPageSize);
  EXPECT_TRUE(file.ReadPage(0, buf.data()).IsOutOfRange());
  EXPECT_TRUE(file.WritePage(3, buf.data()).IsOutOfRange());
  ASSERT_TRUE(file.Close().ok());
}

TEST(PageFileTest, ReopenPreservesPages) {
  TempDir dir;
  {
    PageFile file;
    ASSERT_TRUE(file.Open(dir.file("pf"), true).ok());
    ASSERT_TRUE(file.AppendPage().ok());
    std::vector<char> data(kPageSize, 'Z');
    ASSERT_TRUE(file.WritePage(0, data.data()).ok());
    ASSERT_TRUE(file.Sync().ok());
    ASSERT_TRUE(file.Close().ok());
  }
  PageFile file;
  ASSERT_TRUE(file.Open(dir.file("pf"), false).ok());
  EXPECT_EQ(file.page_count(), 1u);
  std::vector<char> in(kPageSize);
  ASSERT_TRUE(file.ReadPage(0, in.data()).ok());
  EXPECT_EQ(in[100], 'Z');
  ASSERT_TRUE(file.Close().ok());
}

TEST(PageFileTest, CorruptSizeDetected) {
  TempDir dir;
  {
    PageFile file;
    ASSERT_TRUE(file.Open(dir.file("pf"), true).ok());
    ASSERT_TRUE(file.AppendPage().ok());
    ASSERT_TRUE(file.Close().ok());
  }
  // Truncate to a non-multiple of the page size.
  ASSERT_EQ(truncate(dir.file("pf").c_str(), kPageSize / 2), 0);
  PageFile file;
  EXPECT_TRUE(file.Open(dir.file("pf"), false).IsCorruption());
}

// ---- BufferPool -------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(file_.Open(dir_.file("pool"), true).ok());
    for (int i = 0; i < 10; ++i) {
      auto p = file_.AppendPage();
      ASSERT_TRUE(p.ok());
      std::vector<char> data(kPageSize, static_cast<char>('a' + i));
      // Raw PageFile writes bypass the buffer pool's stamp-on-write-back,
      // so stamp here or Fetch would (rightly) reject the pages.
      StampPageChecksum(data.data());
      ASSERT_TRUE(file_.WritePage(p.value(), data.data()).ok());
    }
  }

  TempDir dir_;
  PageFile file_;
};

TEST_F(BufferPoolTest, FetchReadsAndCaches) {
  BufferPool pool(&file_, 4);
  {
    auto g = pool.Fetch(3);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->frame()->data()[0], 'd');
  }
  EXPECT_EQ(pool.stats().disk_reads, 1u);
  {
    auto g = pool.Fetch(3);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool.stats().disk_reads, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, LruEvictsColdestUnpinned) {
  BufferPool pool(&file_, 3);
  { auto a = pool.Fetch(0); }
  { auto b = pool.Fetch(1); }
  { auto c = pool.Fetch(2); }
  // Touch 0 again so 1 is the LRU victim.
  { auto a = pool.Fetch(0); }
  { auto d = pool.Fetch(3); }  // evicts 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  uint64_t reads_before = pool.stats().disk_reads;
  { auto a = pool.Fetch(0); }  // still cached
  { auto c = pool.Fetch(2); }  // still cached
  EXPECT_EQ(pool.stats().disk_reads, reads_before);
  { auto b = pool.Fetch(1); }  // must re-read
  EXPECT_EQ(pool.stats().disk_reads, reads_before + 1);
}

TEST_F(BufferPoolTest, PinnedFramesSurviveEvictionPressure) {
  BufferPool pool(&file_, 2);
  auto pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  // Cycle through other pages; frame 0 must never be evicted while pinned.
  for (uint64_t p = 1; p < 10; ++p) {
    auto g = pool.Fetch(p);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pinned->frame()->data()[0], 'a');
  uint64_t reads = pool.stats().disk_reads;
  auto again = pool.Fetch(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().disk_reads, reads) << "pinned page re-read";
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  BufferPool pool(&file_, 2);
  auto a = pool.Fetch(0);
  auto b = pool.Fetch(1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(pool.Fetch(2).status().IsResourceExhausted());
  a->Release();
  EXPECT_TRUE(pool.Fetch(2).ok());
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  BufferPool pool(&file_, 2);
  {
    auto g = pool.Fetch(5);
    ASSERT_TRUE(g.ok());
    g->frame()->data()[0] = 'X';
    g->frame()->MarkDirty();
  }
  // Force eviction of page 5.
  { auto a = pool.Fetch(6); }
  { auto b = pool.Fetch(7); }
  { auto c = pool.Fetch(8); }
  EXPECT_GT(pool.stats().disk_writes, 0u);
  std::vector<char> in(kPageSize);
  ASSERT_TRUE(file_.ReadPage(5, in.data()).ok());
  EXPECT_EQ(in[0], 'X');
}

TEST_F(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  BufferPool pool(&file_, 8);
  {
    auto g = pool.Fetch(2);
    ASSERT_TRUE(g.ok());
    g->frame()->data()[10] = 'Q';
    g->frame()->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> in(kPageSize);
  ASSERT_TRUE(file_.ReadPage(2, in.data()).ok());
  EXPECT_EQ(in[10], 'Q');
  // Still cached after flush.
  uint64_t reads = pool.stats().disk_reads;
  { auto g = pool.Fetch(2); }
  EXPECT_EQ(pool.stats().disk_reads, reads);
}

TEST_F(BufferPoolTest, MoveOnlyPinGuardTransfersOwnership) {
  BufferPool pool(&file_, 4);
  auto g1 = pool.Fetch(1);
  ASSERT_TRUE(g1.ok());
  BufferPool::PinGuard g2 = std::move(g1).value();
  EXPECT_TRUE(g2.valid());
  BufferPool::PinGuard g3;
  g3 = std::move(g2);
  EXPECT_TRUE(g3.valid());
  EXPECT_FALSE(g2.valid());
}

// ---- Wal ---------------------------------------------------------------------

TEST(WalTest, AppendAndReadAllGroups) {
  TempDir dir;
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("wal")).ok());
  ASSERT_TRUE(wal.AppendGroup(1, "first txn ops", false).ok());
  ASSERT_TRUE(wal.AppendGroup(2, "second txn ops", false).ok());
  ASSERT_TRUE(wal.AppendGroup(1, "", false).ok());  // empty payload legal
  auto groups = wal.ReadAll();
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 3u);
  EXPECT_EQ((*groups)[0].txn_id, 1u);
  EXPECT_EQ((*groups)[0].payload, "first txn ops");
  EXPECT_EQ((*groups)[1].txn_id, 2u);
  EXPECT_EQ((*groups)[2].payload, "");
  ASSERT_TRUE(wal.Close().ok());
}

TEST(WalTest, TruncateEmptiesLog) {
  TempDir dir;
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("wal")).ok());
  ASSERT_TRUE(wal.AppendGroup(1, "data", false).ok());
  EXPECT_GT(wal.SizeBytes(), 0u);
  ASSERT_TRUE(wal.Truncate().ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  EXPECT_EQ(wal.ReadAll()->size(), 0u);
  // Still appendable after truncation.
  ASSERT_TRUE(wal.AppendGroup(2, "more", false).ok());
  EXPECT_EQ(wal.ReadAll()->size(), 1u);
  ASSERT_TRUE(wal.Close().ok());
}

TEST(WalTest, TornTailIsIgnored) {
  TempDir dir;
  std::string path = dir.file("wal");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.AppendGroup(1, "complete group", false).ok());
    ASSERT_TRUE(wal.AppendGroup(2, "this one gets torn", false).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Chop the last few bytes, as a crash mid-append would.
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec);
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(size - 5)), 0);

  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  auto groups = wal.ReadAll();
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 1u) << "torn group must be dropped";
  EXPECT_EQ((*groups)[0].payload, "complete group");
  ASSERT_TRUE(wal.Close().ok());
}

TEST(WalTest, CorruptChecksumStopsScan) {
  TempDir dir;
  std::string path = dir.file("wal");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.AppendGroup(1, "good", false).ok());
    ASSERT_TRUE(wal.AppendGroup(2, "evil", false).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Flip one payload byte of the second group.
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  // Frame: 16-byte header + payload + 4-byte checksum; second frame starts
  // at 16 + 4 + 4 = 24.
  fseek(f, 24 + 16 + 1, SEEK_SET);
  fputc('X', f);
  fclose(f);

  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  auto groups = wal.ReadAll();
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 1u);
  ASSERT_TRUE(wal.Close().ok());
}

// ---- LockManager --------------------------------------------------------------

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager locks(100);
  EXPECT_TRUE(locks.Acquire(1, 7, false).ok());
  EXPECT_TRUE(locks.Acquire(2, 7, false).ok());
  EXPECT_TRUE(locks.Acquire(3, 7, false).ok());
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  locks.ReleaseAll(3);
}

TEST(LockManagerTest, ExclusiveExcludesOthers) {
  LockManager locks(50);
  EXPECT_TRUE(locks.Acquire(1, 7, true).ok());
  EXPECT_TRUE(locks.Acquire(2, 7, false).IsAborted());
  EXPECT_TRUE(locks.Acquire(2, 7, true).IsAborted());
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.Acquire(2, 7, true).ok());
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager locks(50);
  EXPECT_TRUE(locks.Acquire(1, 7, false).ok());
  EXPECT_TRUE(locks.Acquire(1, 7, false).ok());  // reentrant S
  EXPECT_TRUE(locks.Acquire(1, 7, true).ok());   // sole holder upgrades
  EXPECT_TRUE(locks.Acquire(1, 7, false).ok());  // X covers S
  locks.ReleaseAll(1);
}

TEST(LockManagerTest, UpgradeBlockedByOtherSharer) {
  LockManager locks(50);
  EXPECT_TRUE(locks.Acquire(1, 7, false).ok());
  EXPECT_TRUE(locks.Acquire(2, 7, false).ok());
  EXPECT_TRUE(locks.Acquire(1, 7, true).IsAborted());
  locks.ReleaseAll(2);
  EXPECT_TRUE(locks.Acquire(1, 7, true).ok());
  locks.ReleaseAll(1);
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager locks(5000);
  ASSERT_TRUE(locks.Acquire(1, 9, true).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(locks.Acquire(2, 9, true).ok());
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  locks.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GT(locks.lock_waits(), 0u);
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, DisjointPagesNeverConflict) {
  LockManager locks(50);
  for (uint64_t p = 0; p < 50; ++p) {
    EXPECT_TRUE(locks.Acquire(1 + p % 3, p, true).ok());
  }
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  locks.ReleaseAll(3);
}

}  // namespace
}  // namespace labflow
