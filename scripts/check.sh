#!/usr/bin/env bash
# Tier-1 check, in three named phases:
#
#   fast — normal build + every test not labelled `slow`
#   slow — the exhaustive sweeps (fault-injection truncation sweep,
#          recovery property seeds), same build
#   tsan — ThreadSanitizer build, concurrency-focused tests
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

jobs="${1:-$(nproc)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

declare -A phase_result

run_phase() {
  local name="$1"
  shift
  echo
  echo "== phase: $name =="
  if "$@"; then
    phase_result[$name]="ok"
  else
    phase_result[$name]="FAIL"
    return 1
  fi
}

fast() {
  cmake -B "$root/build" -S "$root" >/dev/null
  cmake --build "$root/build" -j "$jobs"
  ctest --test-dir "$root/build" --output-on-failure -j "$jobs" -LE slow
}

slow() {
  ctest --test-dir "$root/build" --output-on-failure -j "$jobs" -L slow
}

tsan() {
  cmake -B "$root/build-tsan" -S "$root" -DLABFLOW_SANITIZE=thread >/dev/null
  cmake --build "$root/build-tsan" -j "$jobs" --target \
    concurrency_test ostore_test storage_manager_test wal_fault_test
  ctest --test-dir "$root/build-tsan" --output-on-failure -j "$jobs" \
    -R 'concurrency_test|ostore_test|storage_manager_test|wal_fault_test'
}

status=0
run_phase fast fast || status=1
if [[ $status -eq 0 ]]; then
  run_phase slow slow || status=1
else
  phase_result[slow]="skipped"
fi
run_phase tsan tsan || status=1

echo
echo "check.sh summary: fast=${phase_result[fast]:-FAIL}" \
     "slow=${phase_result[slow]:-FAIL} tsan=${phase_result[tsan]:-FAIL}"
exit $status
