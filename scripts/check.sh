#!/usr/bin/env bash
# Tier-1 check, in six named phases:
#
#   fast  — normal build + every test not labelled `slow`
#   slow  — the exhaustive sweeps (fault-injection truncation sweep,
#           recovery property seeds), same build
#   fault — storage fault-tolerance suite with a widened seed sweep
#           (LABFLOW_FAULT_SEEDS=48), same build
#   tsan  — ThreadSanitizer build, concurrency-focused tests
#   asan  — Address+UndefinedBehaviorSanitizer build, every fast test
#   lint  — scripts/lint.py project rules, plus clang-tidy over the
#           compilation database when clang-tidy is installed
#
# Usage: scripts/check.sh [jobs]           (all phases)
#        scripts/check.sh <phase> [jobs]   (one: fast|slow|fault|tsan|asan|lint)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"

only=""
if [[ $# -ge 1 && "$1" =~ ^(fast|slow|fault|tsan|asan|lint)$ ]]; then
  only="$1"
  shift
fi
jobs="${1:-$(nproc)}"

declare -A phase_result

run_phase() {
  local name="$1"
  shift
  echo
  echo "== phase: $name =="
  if "$@"; then
    phase_result[$name]="ok"
  else
    phase_result[$name]="FAIL"
    return 1
  fi
}

fast() {
  cmake -B "$root/build" -S "$root" >/dev/null
  cmake --build "$root/build" -j "$jobs"
  ctest --test-dir "$root/build" --output-on-failure -j "$jobs" -LE slow
}

slow() {
  ctest --test-dir "$root/build" --output-on-failure -j "$jobs" -L slow
}

fault() {
  # The fast phase already ran the default 16-seed sweep; here the WAL
  # fault sweep gets 48 seeds to dig deeper into the fault space.
  if [[ ! -d "$root/build" ]]; then
    cmake -B "$root/build" -S "$root" >/dev/null
    cmake --build "$root/build" -j "$jobs" --target storage_fault_test
  fi
  LABFLOW_FAULT_SEEDS=48 ctest --test-dir "$root/build" \
    --output-on-failure -j "$jobs" -R storage_fault_test
}

tsan() {
  cmake -B "$root/build-tsan" -S "$root" -DLABFLOW_SANITIZE=thread >/dev/null
  cmake --build "$root/build-tsan" -j "$jobs" --target \
    concurrency_test ostore_test storage_manager_test wal_fault_test \
    storage_fault_test
  ctest --test-dir "$root/build-tsan" --output-on-failure -j "$jobs" \
    -R 'concurrency_test|ostore_test|storage_manager_test|wal_fault_test|storage_fault_test'
}

asan() {
  cmake -B "$root/build-asan" -S "$root" \
    -DLABFLOW_SANITIZE=address,undefined >/dev/null
  cmake --build "$root/build-asan" -j "$jobs"
  ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs" -LE slow
}

lint() {
  python3 "$root/scripts/lint.py"
  if command -v clang-tidy >/dev/null 2>&1; then
    # The fast phase (or any configure of build/) exports the database.
    if [[ ! -f "$root/build/compile_commands.json" ]]; then
      cmake -B "$root/build" -S "$root" >/dev/null
    fi
    find "$root/src" -name '*.cc' -print0 |
      xargs -0 clang-tidy -p "$root/build" --quiet
  else
    echo "clang-tidy not installed; ran scripts/lint.py only"
  fi
}

phases=(fast slow fault tsan asan lint)
if [[ -n "$only" ]]; then
  phases=("$only")
fi

status=0
for phase in "${phases[@]}"; do
  if [[ ("$phase" == slow || "$phase" == fault) &&
        "${phase_result[fast]:-}" == "FAIL" ]]; then
    phase_result[$phase]="skipped"
    continue
  fi
  run_phase "$phase" "$phase" || status=1
done

echo
summary="check.sh summary:"
for phase in "${phases[@]}"; do
  summary+=" $phase=${phase_result[$phase]:-FAIL}"
done
echo "$summary"
exit $status
