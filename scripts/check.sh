#!/usr/bin/env bash
# Tier-1 check, in six named phases:
#
#   fast  — normal build + every test not labelled `slow`
#   slow  — the exhaustive sweeps (fault-injection truncation sweep,
#           recovery property seeds), same build
#   fault — storage fault-tolerance suite with a widened seed sweep
#           (LABFLOW_FAULT_SEEDS=48), same build
#   tsan  — ThreadSanitizer build, concurrency-focused tests, including
#           the MVCC snapshot-isolation checker with a widened seed sweep
#           (LABFLOW_SNAPSHOT_SEEDS=8; default 4)
#   asan  — Address+UndefinedBehaviorSanitizer build, every fast test
#   lint  — scripts/lint.py project rules (findings written to
#           lint-findings.txt for CI artifacts), plus clang-tidy over the
#           compilation database when clang-tidy is installed
#   lock-order — Debug build (runtime lock-rank validator compiled in):
#           the deliberate-inversion death tests plus the concurrency,
#           network and LSM suites, which drive the real lock graph through
#           the validator. When clang++ is installed, also a full
#           -Werror=thread-safety(-beta) build of the capability
#           annotations (see common/lock_rank.h)
#   bench-smoke — one short deterministic bench run, twice with different
#           buffer pool sizes (and therefore shard counts): validates the
#           cross-version result checksum, that it is identical across pool
#           configurations, and that the --json output parses
#   server — end-to-end labflowd: start the daemon on loopback (ephemeral
#           port), run the network bench against it remotely and once
#           in-process, assert the result checksums are identical (the wire
#           changes no answers), then SIGTERM the daemon and require a
#           graceful drain (exit 0)
#
# Usage: scripts/check.sh [jobs]           (all phases)
#        scripts/check.sh <phase> [jobs]   (one of the names above)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"

only=""
if [[ $# -ge 1 && "$1" =~ ^(fast|slow|fault|tsan|asan|lint|lock-order|bench-smoke|server)$ ]]; then
  only="$1"
  shift
fi
jobs="${1:-$(nproc)}"

declare -A phase_result

run_phase() {
  local name="$1"
  shift
  echo
  echo "== phase: $name =="
  if "$@"; then
    phase_result[$name]="ok"
  else
    phase_result[$name]="FAIL"
    return 1
  fi
}

fast() {
  cmake -B "$root/build" -S "$root" >/dev/null
  cmake --build "$root/build" -j "$jobs"
  ctest --test-dir "$root/build" --output-on-failure -j "$jobs" -LE slow
}

slow() {
  ctest --test-dir "$root/build" --output-on-failure -j "$jobs" -L slow
}

fault() {
  # The fast phase already ran the default 16-seed sweep; here the WAL
  # fault sweep (paged heaps and the LSM history store) gets 48 seeds to
  # dig deeper into the fault space.
  if [[ ! -d "$root/build" ]]; then
    cmake -B "$root/build" -S "$root" >/dev/null
    cmake --build "$root/build" -j "$jobs" --target storage_fault_test \
      lsm_fault_test
  fi
  LABFLOW_FAULT_SEEDS=48 ctest --test-dir "$root/build" \
    --output-on-failure -j "$jobs" -R 'storage_fault_test|lsm_fault_test'
}

tsan() {
  cmake -B "$root/build-tsan" -S "$root" -DLABFLOW_SANITIZE=thread >/dev/null
  cmake --build "$root/build-tsan" -j "$jobs" --target \
    concurrency_test buffer_pool_concurrency_test ostore_test \
    storage_manager_test wal_fault_test storage_fault_test net_test \
    snapshot_isolation_test lsm_test
  # The snapshot checker's seed sweep widens here (default 4): its read
  # path is lock-free by design, which is exactly what TSan should watch.
  # lsm_test rides along for its compaction-under-load stress: committers
  # vs background flush/compaction vs lock-free version-snapshot readers.
  LABFLOW_SNAPSHOT_SEEDS=8 \
    ctest --test-dir "$root/build-tsan" --output-on-failure -j "$jobs" \
    -R 'concurrency_test|buffer_pool_concurrency_test|ostore_test|storage_manager_test|wal_fault_test|storage_fault_test|net_test|snapshot_isolation_test|lsm_test'
}

asan() {
  cmake -B "$root/build-asan" -S "$root" \
    -DLABFLOW_SANITIZE=address,undefined >/dev/null
  cmake --build "$root/build-asan" -j "$jobs"
  ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs" -LE slow
}

bench-smoke() {
  cmake -B "$root/build" -S "$root" >/dev/null
  cmake --build "$root/build" -j "$jobs" --target bench_table2_main
  local out
  out="$(mktemp -d)"
  # Same workload against a small and a large pool: different shard counts,
  # different eviction pressure, same answers. bench_table2_main itself
  # gates on cross-version checksum consistency (exit 1 on mismatch).
  "$root/build/bench/bench_table2_main" --clones=40 --intvl=0.5 \
    --pool=512 --json="$out/small.json" >/dev/null
  "$root/build/bench/bench_table2_main" --clones=40 --intvl=0.5 \
    --pool=4096 --json="$out/large.json" >/dev/null
  python3 - "$out/small.json" "$out/large.json" <<'EOF'
import json, sys
runs = [json.load(open(p)) for p in sys.argv[1:]]
sums = [{r["result_checksum"] for r in run["rows"]} for run in runs]
for s, run in zip(sums, runs):
    assert len(run["rows"]) > 0, "bench produced no rows"
    assert len(s) == 1, f"checksum varies across versions: {s}"
assert sums[0] == sums[1], f"checksum varies with pool size: {sums}"
print(f"bench-smoke: checksum {sums[0].pop()} consistent across "
      f"versions and pool sizes; JSON ok")
EOF
  rm -rf "$out"
}

server() {
  cmake -B "$root/build" -S "$root" >/dev/null
  cmake --build "$root/build" -j "$jobs" --target labflowd bench_fig_server
  local out
  out="$(mktemp -d)"
  # Start labflowd on a durable (OStore) database, ephemeral port; the port
  # file doubles as the readiness signal.
  "$root/build/src/net/labflowd" --db="$out/server.db" --port=0 \
    --port_file="$out/port" >"$out/labflowd.log" 2>&1 &
  local srv_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    if [[ -s "$out/port" ]]; then port="$(cat "$out/port")" && break; fi
    if ! kill -0 "$srv_pid" 2>/dev/null; then
      echo "labflowd died during startup:" >&2
      cat "$out/labflowd.log" >&2
      rm -rf "$out"
      return 1
    fi
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "labflowd never published its port" >&2
    kill "$srv_pid" 2>/dev/null || true
    rm -rf "$out"
    return 1
  fi
  # Same workload twice: remotely against the disk-backed daemon, then
  # in-process on a main-memory store (which also runs its internal
  # remote-vs-local parity gate). The folds are backend-neutral, so every
  # checksum must agree across the two runs.
  local bench_flags=(--queries=400 --materials=64 --open_reqs=1500)
  local rc=0
  "$root/build/bench/bench_fig_server" "${bench_flags[@]}" \
    --connect="127.0.0.1:$port" --json="$out/remote.json" || rc=1
  "$root/build/bench/bench_fig_server" "${bench_flags[@]}" \
    --json="$out/local.json" || rc=1
  if [[ $rc -eq 0 ]]; then
    python3 - "$out/remote.json" "$out/local.json" <<'EOF' || rc=1
import json, sys
remote, local = [json.load(open(p)) for p in sys.argv[1:]]
def sums(run, regime, key):
    return {r[key]: r["checksum"] for r in run["rows"] if r["regime"] == regime}
for regime, key in [("closed_remote", "clients"), ("open_remote", "load_fraction")]:
    a, b = sums(remote, regime, key), sums(local, regime, key)
    assert a and a == b, f"{regime} checksums diverge: daemon={a} in-process={b}"
print("server: remote labflowd checksum-identical to in-process; JSON ok")
EOF
  fi
  # Graceful drain: SIGTERM must produce a clean exit.
  kill -TERM "$srv_pid"
  if ! wait "$srv_pid"; then
    echo "labflowd did not shut down cleanly:" >&2
    cat "$out/labflowd.log" >&2
    rc=1
  fi
  rm -rf "$out"
  return $rc
}

lock-order() {
  # Debug defines LABFLOW_LOCK_RANK_CHECKS (see CMakeLists.txt), so the
  # runtime rank validator is live: lock_rank_test proves an inversion
  # aborts with both acquisition stacks, and the concurrency/network suites
  # drive the real lock graph through the validator — any rank inversion in
  # the tree is a test failure here before it is a deadlock anywhere.
  cmake -B "$root/build-lockorder" -S "$root" \
    -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build "$root/build-lockorder" -j "$jobs" --target \
    lock_rank_test concurrency_test buffer_pool_concurrency_test \
    snapshot_isolation_test net_test lsm_test
  # lsm_test drives the four LSM ranks (commit -> WAL hand-off, background
  # flush/compaction, the cache leaves) under the validator.
  ctest --test-dir "$root/build-lockorder" --output-on-failure -j "$jobs" \
    -R 'lock_rank_test|concurrency_test|buffer_pool_concurrency_test|snapshot_isolation_test|net_test|lsm_test'
  # The static half: Clang's -Werror=thread-safety(-beta) pass over the
  # capability and acquired_before/after annotations. GCC ignores them, so
  # this only runs where clang++ exists (CI's lock-order job installs it).
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B "$root/build-clang" -S "$root" \
      -DCMAKE_CXX_COMPILER=clang++ >/dev/null
    cmake --build "$root/build-clang" -j "$jobs"
  else
    echo "clang++ not installed; skipped the thread-safety analysis build"
  fi
}

lint() {
  python3 "$root/scripts/lint.py" --output="$root/lint-findings.txt"
  python3 "$root/scripts/lint.py" --self-test
  if command -v clang-tidy >/dev/null 2>&1; then
    # The fast phase (or any configure of build/) exports the database.
    if [[ ! -f "$root/build/compile_commands.json" ]]; then
      cmake -B "$root/build" -S "$root" >/dev/null
    fi
    find "$root/src" -name '*.cc' -print0 |
      xargs -0 clang-tidy -p "$root/build" --quiet
  else
    echo "clang-tidy not installed; ran scripts/lint.py only"
  fi
}

phases=(fast slow fault tsan asan lint lock-order bench-smoke server)
if [[ -n "$only" ]]; then
  phases=("$only")
fi

status=0
for phase in "${phases[@]}"; do
  if [[ ("$phase" == slow || "$phase" == fault) &&
        "${phase_result[fast]:-}" == "FAIL" ]]; then
    phase_result[$phase]="skipped"
    continue
  fi
  run_phase "$phase" "$phase" || status=1
done

echo
summary="check.sh summary:"
for phase in "${phases[@]}"; do
  summary+=" $phase=${phase_result[$phase]:-FAIL}"
done
echo "$summary"
exit $status
