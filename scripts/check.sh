#!/usr/bin/env bash
# Tier-1 check: normal build + full test suite, then a ThreadSanitizer
# build of the tree with the concurrency tests run under TSan.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

jobs="${1:-$(nproc)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

echo "== normal build + ctest =="
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"

echo
echo "== ThreadSanitizer build + concurrency tests =="
cmake -B "$root/build-tsan" -S "$root" -DLABFLOW_SANITIZE=thread >/dev/null
cmake --build "$root/build-tsan" -j "$jobs" --target \
  concurrency_test ostore_test storage_manager_test
ctest --test-dir "$root/build-tsan" --output-on-failure -j "$jobs" \
  -R 'concurrency_test|ostore_test|storage_manager_test'

echo
echo "All checks passed."
