#!/usr/bin/env python3
"""Project lint: the checks clang-tidy does not cover.

Rules (all scoped to the source tree: src/, tests/, bench/, examples/,
except where noted):

  value-on-temporary   Naked `.value()` chained onto a function call in
                       src/ — the Result temporary dies at the end of the
                       statement (see the lifetime note in common/result.h)
                       and nothing checked ok() first. Bind the Result to a
                       local, test ok(), then take the value, or use
                       LABFLOW_ASSIGN_OR_RETURN. `std::move(local).value()`
                       is the sanctioned extraction and is allowed.
  assert-side-effect   `assert(...)` whose condition contains ++/--/
                       assignment: the expression vanishes under NDEBUG, so
                       the side effect silently disappears in release
                       builds.
  pragma-once          `#pragma once` — this tree uses include guards
                       (LABFLOW_<PATH>_H_), which clang-tidy and the guard
                       check below can verify.
  include-guard        Header guard missing or not matching the canonical
                       LABFLOW_<PATH>_H_ name derived from the file path.
  naked-mutex          Raw std synchronization (std::mutex, std::lock_guard,
                       std::condition_variable, ...) in src/ outside
                       common/mutex.h. Infrastructure locks must be the
                       rankable labflow::Mutex / SharedMutex / CondVar so
                       the lock-rank validator and Clang's thread-safety
                       analysis see them (common/lock_rank.h).
  opcode-sync          Cross-file invariant on the wire protocol: every
                       enumerator of net/wire.h's Op enum must have a
                       `case Op::kX` dispatch arm in net/server.cc and a
                       client-side reference in net/client.cc. Findings are
                       reported against the enumerator's line in wire.h, so
                       a deliberate asymmetry is waived there.
  guarded-by-coverage  A class that owns a labflow Mutex/SharedMutex must
                       say, for every mutable data member, which lock guards
                       it (LABFLOW_GUARDED_BY / LABFLOW_PT_GUARDED_BY) — or
                       waive the member with a NOLINT explaining why it
                       needs none (const-after-construction, single-threaded
                       phase, ...). const and std::atomic members are
                       exempt. src/ only.
  io-under-lock        File I/O (fwrite/fsync/pread/..., File::Read/Write/
                       Sync/Append, PageFile::ReadPage/WritePage/AppendPage)
                       inside a MutexLock / ReaderMutexLock / WriterMutexLock
                       scope in src/. Disk I/O under an infrastructure mutex
                       serializes everything behind a syscall; stage under
                       the lock, do the I/O outside (see Wal's group commit).
                       Deliberate holds (PageFile::AppendPage's allocation
                       barrier) carry a NOLINT with the design note. Known
                       limitation: only RAII guard scopes are tracked, not
                       explicit Lock()/Unlock() pairs.

A finding can be waived by putting NOLINT(<rule>) in a trailing comment on
the offending line (NOLINT(*) waives every rule). `--self-test` runs the
built-in fixture suite (each rule must fire on its bad snippet and stay
quiet on the waived one) — wired into CTest as `lint_self_test`.
`--output=FILE` additionally writes the findings (or "clean") to FILE, for
CI artifacts. Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTS = {".h", ".cc", ".cpp", ".hpp"}


def waived(line, rule):
    return f"NOLINT({rule})" in line or "NOLINT(*)" in line


def strip_strings_and_comments(line):
    """Crude but adequate: blanks string/char literals and // comments so
    the regexes below do not fire inside them."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return re.sub(r"//.*", "", line)


def strip_code(text):
    """Whole-file version: blanks comments (// and /* */) and string/char
    literals while preserving every newline, so brace/statement scanning
    keeps exact line numbers. Single pass — a quote inside a comment or a
    // inside a string cannot confuse it the way per-line regexes can."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in "\"'":
            q = c
            out.append(q)
            i += 1
            while i < n and text[i] != q:
                if text[i] == "\\":
                    i += 1
                i += 1
            out.append(q)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---- per-line rules ---------------------------------------------------------

# `).value()` not immediately preceded by a std::move(<ident...>) call.
VALUE_ON_TEMP = re.compile(r"\)\s*\.\s*value\s*\(\)")
MOVED_VALUE = re.compile(r"std::move\s*\([^()]*\)\s*\.\s*value\s*\(\)")

ASSERT_CALL = re.compile(r"\bassert\s*\(")
# ++/--/compound or plain assignment; plain `=` must not be ==, !=, <=, >=
# or be preceded by one of those operators' first characters.
SIDE_EFFECT = re.compile(r"\+\+|--|(?<![=!<>+\-*/&|^])=(?!=)")

GUARD_IFNDEF = re.compile(r"^#ifndef\s+(\w+)\s*$")

# Raw std synchronization primitives that bypass the rank validator. The
# include forms are flagged too: pulling the header in is how the types
# arrive.
NAKED_MUTEX = re.compile(
    r"std\s*::\s*(recursive_|timed_|recursive_timed_|shared_timed_|shared_)?"
    r"mutex\b"
    r"|std\s*::\s*(lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std\s*::\s*condition_variable(_any)?\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>")
# The one place allowed to touch std primitives: the wrapper itself.
NAKED_MUTEX_ALLOWED = {Path("src/common/mutex.h")}

# ---- io-under-lock ----------------------------------------------------------

RAII_GUARD = re.compile(
    r"\b(MutexLock|ReaderMutexLock|WriterMutexLock)\s+\w+\s*[({]")
IO_CALL = re.compile(
    r"\b(fwrite|fread|fsync|fdatasync|pread|pwrite|ftruncate)\s*\("
    r"|->\s*(Read|Write|Sync|Append|ReadPage|WritePage|AppendPage)\s*\("
    r"|\.\s*(ReadPage|WritePage|AppendPage)\s*\(")

# ---- guarded-by-coverage ----------------------------------------------------

CLASS_HEAD = re.compile(r"\b(class|struct)\b(?!.*;)")
LABFLOW_LOCK_MEMBER = re.compile(r"\b(Mutex|SharedMutex)\s+\w+")
GUARD_ANNOTATION = re.compile(r"\bLABFLOW_(PT_)?GUARDED_BY\s*\(")
# Annotations to strip before deciding whether a statement is a function
# declaration (they carry parens of their own).
ANNOT_STRIP = re.compile(
    r"\bLABFLOW_(PT_)?GUARDED_BY\s*\([^()]*\)"
    r"|\bLABFLOW_ACQUIRED_(BEFORE|AFTER)\s*\([^()]*\)")
MEMBER_SKIP = re.compile(
    r"^\s*(static|constexpr|using|typedef|friend|enum|template|public|"
    r"private|protected|class|struct)\b|\boperator\b")
EXEMPT_MEMBER = re.compile(
    r"\bconst\b|\bstd\s*::\s*atomic\b|\b(Mutex|SharedMutex|CondVar)\b")

GUARD_DEF = re.compile(r"^#define\s+(\w+)\s*$")


def canonical_guard(relpath):
    parts = list(relpath.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    return "LABFLOW_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, rel, lineno, rule, msg):
        self.findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # -- whole-file driver ----------------------------------------------------

    def check_text(self, rel, text):
        """Runs every single-file rule on one translation unit. `rel` is the
        repo-relative Path (drives the per-directory scoping)."""
        lines = text.splitlines()
        in_src = rel.parts[0] == "src"

        for i, raw in enumerate(lines, 1):
            line = strip_strings_and_comments(raw)

            if "#pragma once" in line and not waived(raw, "pragma-once"):
                self.report(rel, i, "pragma-once",
                            "use a LABFLOW_<PATH>_H_ include guard instead")

            if (in_src and rel not in NAKED_MUTEX_ALLOWED
                    and not waived(raw, "naked-mutex")):
                m = NAKED_MUTEX.search(line)
                if m:
                    self.report(
                        rel, i, "naked-mutex",
                        f"raw std synchronization ('{m.group(0).strip()}') "
                        "bypasses the lock-rank validator; use "
                        "labflow::Mutex / SharedMutex / CondVar "
                        "(common/mutex.h)")

            if in_src and not waived(raw, "value-on-temporary"):
                for m in VALUE_ON_TEMP.finditer(line):
                    # Allowed iff this .value() is the tail of std::move(...).
                    if any(mm.end() == m.end()
                           for mm in MOVED_VALUE.finditer(line)):
                        continue
                    self.report(rel, i, "value-on-temporary",
                                ".value() on an unchecked temporary Result; "
                                "bind it to a local and test ok() first")

            if not waived(raw, "assert-side-effect"):
                for m in ASSERT_CALL.finditer(line):
                    # Take the parenthesized argument (balanced on this line).
                    depth, j = 0, m.end() - 1
                    arg_start = m.end()
                    while j < len(line):
                        if line[j] == "(":
                            depth += 1
                        elif line[j] == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    arg = line[arg_start:j if depth == 0 else len(line)]
                    if SIDE_EFFECT.search(arg):
                        self.report(rel, i, "assert-side-effect",
                                    "assert condition has a side effect, "
                                    "which vanishes under NDEBUG")

        if rel.suffix in {".h", ".hpp"} and not waived(
                lines[0] if lines else "", "include-guard"):
            want = canonical_guard(rel)
            ifndefs = [m.group(1) for ln in lines[:5]
                       for m in [GUARD_IFNDEF.match(ln.strip())] if m]
            if want not in ifndefs:
                self.report(rel, 1, "include-guard",
                            f"expected include guard {want}")
            elif f"#define {want}" not in text:
                self.report(rel, 1, "include-guard",
                            f"#ifndef {want} without matching #define")

        if in_src:
            self.check_io_under_lock(rel, text, lines)
            self.check_guarded_by(rel, text, lines)

    # -- io-under-lock --------------------------------------------------------

    def check_io_under_lock(self, rel, text, raw_lines):
        stripped = strip_code(text).splitlines()
        depth = 0
        guards = []  # brace depth at which each active RAII guard lives
        for i, line in enumerate(stripped, 1):
            raw = raw_lines[i - 1] if i <= len(raw_lines) else ""
            # Walk the line's braces, guard declarations and I/O calls in
            # textual order, so `{ MutexLock g(mu); Stage(); }` opened and
            # closed on one line does not leak its guard to later lines.
            events = [(m.start(), "+") for m in re.finditer(r"\{", line)]
            events += [(m.start(), "-") for m in re.finditer(r"\}", line)]
            events += [(m.start(), "g") for m in RAII_GUARD.finditer(line)]
            events += [(m.start(), "io") for m in IO_CALL.finditer(line)]
            for _, kind in sorted(events):
                if kind == "+":
                    depth += 1
                elif kind == "-":
                    depth -= 1
                    while guards and depth < guards[-1]:
                        guards.pop()
                elif kind == "g":
                    guards.append(depth)
                elif kind == "io" and guards and not waived(
                        raw, "io-under-lock"):
                    self.report(rel, i, "io-under-lock",
                                "file I/O inside a mutex guard scope; stage "
                                "under the lock and do the I/O outside, or "
                                "NOLINT with the design rationale")

    # -- guarded-by-coverage --------------------------------------------------

    def check_guarded_by(self, rel, text, raw_lines):
        """Statement-level scan: finds class/struct bodies, collects their
        member-level declaration statements (accumulated across lines until
        the `;` at member depth), and — for classes owning a labflow
        Mutex/SharedMutex — requires every mutable data member to carry
        LABFLOW_GUARDED_BY / LABFLOW_PT_GUARDED_BY or a NOLINT waiver."""
        stripped = strip_code(text)
        # Scope stack entry: [is_class, has_lock, members]; members are
        # (start_line, end_line, statement_text).
        scopes = []
        stmt, stmt_line = [], 1
        line_no = 1
        inner = 0  # paren/brace depth inside the current statement
        for ch in stripped:
            if ch == "\n":
                line_no += 1
                stmt.append(" ")
                continue
            if ch == "{":
                head = "".join(stmt)
                if inner == 0 and CLASS_HEAD.search(head) \
                        and not re.search(r"\benum\b", head):
                    scopes.append([True, False, []])
                    stmt, stmt_line = [], line_no
                elif inner == 0 and not scopes:
                    scopes.append([False, False, []])
                    stmt, stmt_line = [], line_no
                elif inner == 0:
                    # Brace-init of a member (`Mutex mu_{...}`) vs a nested
                    # body (function, nested class): an initializer's brace
                    # follows an identifier at statement level — treat a
                    # head ending in an identifier/annotation-paren as init
                    # only when the statement already names a lock or data
                    # member; simplest robust cut: a head with `(` that is
                    # not an annotation, or ending in `)`, is a function —
                    # everything else could be an init. Track function and
                    # nested bodies as non-class scopes; inits ride along as
                    # inner braces.
                    bare = ANNOT_STRIP.sub("", head)
                    if re.search(r"[)\s](const\s*)?(noexcept\s*)?$", bare) \
                            and "(" in bare:
                        scopes.append([False, False, []])
                        stmt, stmt_line = [], line_no
                    else:
                        inner += 1
                        stmt.append(ch)
                else:
                    inner += 1
                    stmt.append(ch)
                continue
            if ch == "}":
                if inner > 0:
                    inner -= 1
                    stmt.append(ch)
                    continue
                if scopes:
                    is_class, has_lock, members = scopes.pop()
                    if is_class and has_lock:
                        self._report_unguarded(rel, raw_lines, members)
                stmt, stmt_line = [], line_no
                continue
            if ch == ";" and inner == 0:
                statement = "".join(stmt).strip()
                if scopes and scopes[-1][0] and statement:
                    self._note_member(scopes[-1], statement, stmt_line,
                                      line_no)
                stmt, stmt_line = [], line_no
                continue
            if ch in "()":
                inner += 1 if ch == "(" else -1
                if inner < 0:
                    inner = 0
            if not stmt:
                stmt_line = line_no
            stmt.append(ch)

    def _note_member(self, scope, statement, start_line, end_line):
        # Access specifiers accumulate into the statement; drop them.
        statement = re.sub(
            r"\b(public|private|protected)\s*:", " ", statement).strip()
        if not statement or MEMBER_SKIP.match(statement):
            return
        if LABFLOW_LOCK_MEMBER.search(ANNOT_STRIP.sub("", statement)):
            scope[1] = True  # the class owns a rankable lock
            return
        bare = ANNOT_STRIP.sub("", statement)
        if "(" in bare:  # function/ctor declaration
            return
        if EXEMPT_MEMBER.search(bare):
            return
        has_guard = bool(GUARD_ANNOTATION.search(statement))
        if not has_guard:
            scope[2].append((start_line, end_line, statement))

    def _report_unguarded(self, rel, raw_lines, members):
        for start, end, statement in members:
            span = raw_lines[start - 1:end]
            if any(waived(r, "guarded-by-coverage") for r in span):
                continue
            decl = re.split(r"[={]", statement)[0].strip()
            name = decl.split()[-1] if decl.split() else "?"
            self.report(rel, start, "guarded-by-coverage",
                        f"member '{name}' in a lock-owning class has no "
                        "LABFLOW_GUARDED_BY; annotate which mutex guards "
                        "it, or NOLINT with why it needs none")

    # -- opcode-sync ----------------------------------------------------------

    OP_ENUMERATOR = re.compile(r"^\s*(k\w+)\s*=\s*\d+\s*,")

    def check_opcode_sync(self, wire_rel, wire_text, server_text,
                          client_text):
        """Every Op enumerator needs a server dispatch arm and a client
        reference. Reported against wire.h so a deliberate asymmetry is
        waived next to the enumerator it concerns."""
        server = strip_code(server_text)
        client = strip_code(client_text)
        in_enum = False
        for i, raw in enumerate(wire_text.splitlines(), 1):
            line = strip_strings_and_comments(raw)
            if re.search(r"\benum\s+class\s+Op\b", line):
                in_enum = True
                continue
            if in_enum and "}" in line:
                break
            if not in_enum:
                continue
            m = self.OP_ENUMERATOR.match(line)
            if not m or waived(raw, "opcode-sync"):
                continue
            op = m.group(1)
            if not re.search(rf"\bcase\s+Op\s*::\s*{op}\b", server):
                self.report(wire_rel, i, "opcode-sync",
                            f"Op::{op} has no `case Op::{op}` dispatch arm "
                            "in net/server.cc")
            if not re.search(rf"\bOp\s*::\s*{op}\b", client):
                self.report(wire_rel, i, "opcode-sync",
                            f"Op::{op} is never referenced in net/client.cc "
                            "(missing RemoteSession stub?)")


# ---- tree driver ------------------------------------------------------------


def run_tree(linter):
    for d in SCAN_DIRS:
        base = ROOT / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTS and path.is_file():
                linter.check_text(path.relative_to(ROOT),
                                  path.read_text(encoding="utf-8"))
    wire = ROOT / "src/net/wire.h"
    server = ROOT / "src/net/server.cc"
    client = ROOT / "src/net/client.cc"
    if wire.is_file() and server.is_file() and client.is_file():
        linter.check_opcode_sync(wire.relative_to(ROOT),
                                 wire.read_text(encoding="utf-8"),
                                 server.read_text(encoding="utf-8"),
                                 client.read_text(encoding="utf-8"))


# ---- self-test --------------------------------------------------------------

# (rule, path the fixture pretends to live at, snippet, should_fire).
# Each rule has a firing fixture and a NOLINT-waived twin, so the suite
# checks both halves of the contract: detection and suppression.
FIXTURES = [
    ("value-on-temporary", "src/x.cc",
     "void F() { auto v = Make().value(); }\n", True),
    ("value-on-temporary", "src/x.cc",
     "void F() { auto v = Make().value(); }  // NOLINT(value-on-temporary)\n",
     False),
    ("value-on-temporary", "src/x.cc",
     "void F() { auto v = std::move(r).value(); }\n", False),
    ("assert-side-effect", "src/x.cc",
     "void F() { assert(n++ > 0); }\n", True),
    ("assert-side-effect", "src/x.cc",
     "void F() { assert(n++ > 0); }  // NOLINT(assert-side-effect)\n", False),
    ("pragma-once", "src/x.h",
     "#pragma once\n", True),
    ("pragma-once", "src/x.h",
     "#pragma once  // NOLINT(pragma-once)\n", False),
    ("include-guard", "src/x.h",
     "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n", True),
    ("include-guard", "src/x.h",
     "// NOLINT(include-guard)\n#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n",
     False),
    ("include-guard", "src/x.h",
     "#ifndef LABFLOW_X_H_\n#define LABFLOW_X_H_\n#endif  "
     "// LABFLOW_X_H_\n", False),
    ("naked-mutex", "src/x.cc",
     "std::mutex mu;\n", True),
    ("naked-mutex", "src/x.cc",
     "#include <mutex>\n", True),
    ("naked-mutex", "src/x.cc",
     "std::lock_guard<std::mutex> g(mu);  // NOLINT(naked-mutex)\n", False),
    ("naked-mutex", "tests/x.cc",
     "std::mutex mu;\n", False),  # scoped to src/
    ("guarded-by-coverage", "src/x.h",
     "class C {\n"
     "  Mutex mu_{LockRank::kTxnTable, \"t\"};\n"
     "  int counter_ = 0;\n"
     "};\n", True),
    ("guarded-by-coverage", "src/x.h",
     "class C {\n"
     "  Mutex mu_{LockRank::kTxnTable, \"t\"};\n"
     "  int counter_ LABFLOW_GUARDED_BY(mu_) = 0;\n"
     "};\n", False),
    ("guarded-by-coverage", "src/x.h",
     "class C {\n"
     "  Mutex mu_{LockRank::kTxnTable, \"t\"};\n"
     "  int counter_ = 0;  // NOLINT(guarded-by-coverage): startup only\n"
     "};\n", False),
    ("guarded-by-coverage", "src/x.h",
     "class C {\n"
     "  Mutex mu_{LockRank::kTxnTable, \"t\"};\n"
     "  const int limit_ = 8;\n"
     "  std::atomic<int> hits_{0};\n"
     "};\n", False),  # const and atomic members are exempt
    ("guarded-by-coverage", "src/x.h",
     "class C {\n"
     "  int counter_ = 0;\n"
     "};\n", False),  # no lock member, no requirement
    # The rule covers every src/ subtree — pinned for src/lsm, whose
    # manager mixes three locks and background threads (lsm/lsm_manager.h).
    ("guarded-by-coverage", "src/lsm/x.h",
     "class LsmThing {\n"
     "  SharedMutex mu_{LockRank::kLsmState, \"lsm.state\"};\n"
     "  std::deque<int> imms_;\n"
     "};\n", True),
    ("guarded-by-coverage", "src/lsm/x.h",
     "class LsmThing {\n"
     "  SharedMutex mu_{LockRank::kLsmState, \"lsm.state\"};\n"
     "  std::deque<int> imms_ LABFLOW_GUARDED_BY(mu_);\n"
     "};\n", False),
    ("io-under-lock", "src/x.cc",
     "void F() {\n"
     "  MutexLock g(mu_);\n"
     "  fwrite(buf, 1, n, f);\n"
     "}\n", True),
    ("io-under-lock", "src/x.cc",
     "void F() {\n"
     "  MutexLock g(mu_);\n"
     "  file_->Write(off, data);  // NOLINT(io-under-lock): see header\n"
     "}\n", False),
    ("io-under-lock", "src/x.cc",
     "void F() {\n"
     "  { MutexLock g(mu_); staged = Snapshot(); }\n"
     "  fwrite(buf, 1, n, f);\n"
     "}\n", False),  # guard scope closed before the I/O
]

WIRE_OK = ("enum class Op : uint8_t {\n"
           "  kPing = 1,\n"
           "};\n")
WIRE_WAIVED = ("enum class Op : uint8_t {\n"
               "  kPing = 1,  // NOLINT(opcode-sync): fixture\n"
               "};\n")
SERVER_WITH = "switch (op) { case Op::kPing: break; }\n"
SERVER_WITHOUT = "switch (op) { default: break; }\n"
CLIENT_WITH = "conn->Call(Op::kPing, 0, body);\n"
CLIENT_WITHOUT = "// no ops\n"

OPCODE_FIXTURES = [
    # (wire, server, client, expected number of opcode-sync findings)
    (WIRE_OK, SERVER_WITH, CLIENT_WITH, 0),
    (WIRE_OK, SERVER_WITHOUT, CLIENT_WITH, 1),   # missing dispatch arm
    (WIRE_OK, SERVER_WITH, CLIENT_WITHOUT, 1),   # missing client stub
    (WIRE_OK, SERVER_WITHOUT, CLIENT_WITHOUT, 2),
    (WIRE_WAIVED, SERVER_WITHOUT, CLIENT_WITHOUT, 0),  # NOLINT waives both
]


def self_test():
    failures = []
    for idx, (rule, rel, snippet, should_fire) in enumerate(FIXTURES):
        lt = Linter()
        lt.check_text(Path(rel), snippet)
        fired = [f for f in lt.findings if f"[{rule}]" in f]
        if bool(fired) != should_fire:
            verb = "did not fire" if should_fire else "fired"
            failures.append(
                f"fixture {idx} [{rule}]: {verb} on:\n{snippet}"
                + (("  findings: " + "; ".join(fired) + "\n") if fired
                   else ""))
    for idx, (wire, server, client, want) in enumerate(OPCODE_FIXTURES):
        lt = Linter()
        lt.check_opcode_sync(Path("src/net/wire.h"), wire, server, client)
        got = [f for f in lt.findings if "[opcode-sync]" in f]
        if len(got) != want:
            failures.append(
                f"opcode fixture {idx}: expected {want} finding(s), got "
                f"{len(got)}: {'; '.join(got)}")
    if failures:
        for f in failures:
            print(f, file=sys.stderr)
        print(f"lint.py --self-test: {len(failures)} fixture failure(s)",
              file=sys.stderr)
        return 1
    total = len(FIXTURES) + len(OPCODE_FIXTURES)
    print(f"lint.py --self-test: {total} fixtures ok")
    return 0


def main(argv):
    output = None
    run_self_test = False
    for arg in argv[1:]:
        if arg == "--self-test":
            run_self_test = True
        elif arg.startswith("--output="):
            output = Path(arg[len("--output="):])
        else:
            print(f"usage: lint.py [--self-test] [--output=FILE]  "
                  f"(unknown arg: {arg})", file=sys.stderr)
            return 2
    if run_self_test:
        return self_test()

    lt = Linter()
    run_tree(lt)
    for f in lt.findings:
        print(f)
    if output is not None:
        output.write_text(("\n".join(lt.findings) + "\n") if lt.findings
                          else "clean\n", encoding="utf-8")
    if lt.findings:
        print(f"lint.py: {len(lt.findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
