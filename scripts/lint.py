#!/usr/bin/env python3
"""Project lint: the checks clang-tidy does not cover.

Rules (all scoped to the source tree: src/, tests/, bench/, examples/):

  value-on-temporary   Naked `.value()` chained onto a function call in
                       src/ — the Result temporary dies at the end of the
                       statement (see the lifetime note in common/result.h)
                       and nothing checked ok() first. Bind the Result to a
                       local, test ok(), then take the value, or use
                       LABFLOW_ASSIGN_OR_RETURN. `std::move(local).value()`
                       is the sanctioned extraction and is allowed.
  assert-side-effect   `assert(...)` whose condition contains ++/--/
                       assignment: the expression vanishes under NDEBUG, so
                       the side effect silently disappears in release
                       builds.
  pragma-once          `#pragma once` — this tree uses include guards
                       (LABFLOW_<PATH>_H_), which clang-tidy and the guard
                       check below can verify.
  include-guard        Header guard missing or not matching the canonical
                       LABFLOW_<PATH>_H_ name derived from the file path.

A finding can be waived by putting NOLINT(<rule>) in a trailing comment on
the offending line. Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTS = {".h", ".cc", ".cpp", ".hpp"}

findings = []


def report(path, lineno, rule, msg):
    findings.append(f"{path.relative_to(ROOT)}:{lineno}: [{rule}] {msg}")


def waived(line, rule):
    return f"NOLINT({rule})" in line or "NOLINT(*)" in line


def strip_strings_and_comments(line):
    """Crude but adequate: blanks string/char literals and // comments so
    the regexes below do not fire inside them."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return re.sub(r"//.*", "", line)


# `).value()` not immediately preceded by a std::move(<ident...>) call.
VALUE_ON_TEMP = re.compile(r"\)\s*\.\s*value\s*\(\)")
MOVED_VALUE = re.compile(r"std::move\s*\([^()]*\)\s*\.\s*value\s*\(\)")

ASSERT_CALL = re.compile(r"\bassert\s*\(")
# ++/--/compound or plain assignment; plain `=` must not be ==, !=, <=, >=
# or be preceded by one of those operators' first characters.
SIDE_EFFECT = re.compile(r"\+\+|--|(?<![=!<>+\-*/&|^])=(?!=)")

GUARD_DEF = re.compile(r"^#define\s+(\w+)\s*$")
GUARD_IFNDEF = re.compile(r"^#ifndef\s+(\w+)\s*$")


def canonical_guard(relpath):
    parts = list(relpath.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    return "LABFLOW_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_file(path):
    rel = path.relative_to(ROOT)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    in_src = rel.parts[0] == "src"
    for i, raw in enumerate(lines, 1):
        line = strip_strings_and_comments(raw)

        if "#pragma once" in line and not waived(raw, "pragma-once"):
            report(path, i, "pragma-once",
                   "use a LABFLOW_<PATH>_H_ include guard instead")

        if in_src and not waived(raw, "value-on-temporary"):
            for m in VALUE_ON_TEMP.finditer(line):
                # Allowed iff this .value() is the tail of std::move(...).
                if any(mm.end() == m.end()
                       for mm in MOVED_VALUE.finditer(line)):
                    continue
                report(path, i, "value-on-temporary",
                       ".value() on an unchecked temporary Result; bind it "
                       "to a local and test ok() first")

        if not waived(raw, "assert-side-effect"):
            for m in ASSERT_CALL.finditer(line):
                # Take the parenthesized argument (balanced on this line).
                depth, j = 0, m.end() - 1
                arg_start = m.end()
                while j < len(line):
                    if line[j] == "(":
                        depth += 1
                    elif line[j] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                arg = line[arg_start:j if depth == 0 else len(line)]
                if SIDE_EFFECT.search(arg):
                    report(path, i, "assert-side-effect",
                           "assert condition has a side effect, which "
                           "vanishes under NDEBUG")

    if path.suffix in {".h", ".hpp"} and not waived(lines[0] if lines else "",
                                                    "include-guard"):
        want = canonical_guard(rel)
        ifndefs = [m.group(1) for ln in lines[:5]
                   for m in [GUARD_IFNDEF.match(ln.strip())] if m]
        if want not in ifndefs:
            report(path, 1, "include-guard",
                   f"expected include guard {want}")
        elif f"#define {want}" not in text:
            report(path, 1, "include-guard",
                   f"#ifndef {want} without matching #define")


def main():
    for d in SCAN_DIRS:
        base = ROOT / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTS and path.is_file():
                check_file(path)
    for f in findings:
        print(f)
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
