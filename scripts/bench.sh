#!/usr/bin/env bash
# Benchmark trajectory: runs the JSON-emitting benches and writes
# BENCH_<name>.json at the repo root, so successive commits leave a
# machine-readable performance trail (CI uploads them as artifacts).
#
# Usage: scripts/bench.sh [quick|full] [jobs]
#
#   quick — small deterministic sizes, minutes not hours; the default and
#           what CI runs. Numbers are noisy at this scale; the files are
#           for trend-watching and the embedded correctness checks
#           (cross-version checksums, read-mostly scaling gate), not for
#           quoting.
#   full  — paper-scale runs (see EXPERIMENTS.md for the intended sizes).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-quick}"
jobs="${2:-$(nproc)}"

if [[ "$mode" != quick && "$mode" != full ]]; then
  echo "usage: scripts/bench.sh [quick|full] [jobs]" >&2
  exit 2
fi

cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs" --target \
  bench_table2_main bench_fig_concurrency bench_fig_server bench_fig_snapshot

if [[ "$mode" == quick ]]; then
  # Table 2 runs the 10X/100X history scales with a bounded pool: at 100X
  # the paged heaps fault on nearly every history edge while the LSM store
  # stays sequential — the sixth-column comparison stays visible even at
  # quick sizes (EXPERIMENTS.md).
  table2_flags=(--clones=40 --intvls=1,10,100 --pool=512)
  conc_flags=(--txns=150 --sync_txns=30 --queries=1500 --materials=128)
  server_flags=(--queries=800 --materials=96 --open_reqs=2500)
  snapshot_flags=(--batches=60 --batch=8 --scans=10)
else
  table2_flags=(--intvls=0.5,1,2,10,100)
  conc_flags=()
  server_flags=()
  snapshot_flags=()
fi

# Runs one bench binary and insists on a fresh report with actual rows: the
# stale file is removed first, so a bench that crashes, silently writes
# nothing, or writes an empty `rows` array fails the run instead of leaving
# the previous commit's numbers in place under this commit's name.
run_bench() {
  local name="$1"; shift
  local out="$root/BENCH_${name}.json"
  echo "== bench: $name ($mode) =="
  rm -f "$out"
  "$root/build/bench/bench_${name}" "$@" --json="$out"
  if [[ ! -s "$out" ]]; then
    echo "ERROR: bench_${name} exited 0 but wrote no JSON to $out" >&2
    exit 1
  fi
  python3 - "$out" <<'EOF'
import json, sys
path = sys.argv[1]
rows = json.load(open(path)).get("rows", [])
if not rows:
    sys.exit(f"ERROR: {path} parsed but has no rows")
print(f"   {path.rsplit('/', 1)[-1]}: {len(rows)} rows")
EOF
}

run_bench table2_main "${table2_flags[@]}"
run_bench fig_concurrency "${conc_flags[@]}"
run_bench fig_server "${server_flags[@]}"
run_bench fig_snapshot "${snapshot_flags[@]}"

echo
echo "wrote:"
ls -l "$root"/BENCH_*.json
# Show what moved against the committed trail — the per-commit performance
# diff reviewers actually read.
if git -C "$root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo
  echo "diff vs committed BENCH_*.json:"
  git -C "$root" --no-pager diff --stat -- 'BENCH_*.json' || true
fi
