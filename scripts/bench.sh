#!/usr/bin/env bash
# Benchmark trajectory: runs the JSON-emitting benches and writes
# BENCH_<name>.json at the repo root, so successive commits leave a
# machine-readable performance trail (CI uploads them as artifacts).
#
# Usage: scripts/bench.sh [quick|full] [jobs]
#
#   quick — small deterministic sizes, minutes not hours; the default and
#           what CI runs. Numbers are noisy at this scale; the files are
#           for trend-watching and the embedded correctness checks
#           (cross-version checksums, read-mostly scaling gate), not for
#           quoting.
#   full  — paper-scale runs (see EXPERIMENTS.md for the intended sizes).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-quick}"
jobs="${2:-$(nproc)}"

if [[ "$mode" != quick && "$mode" != full ]]; then
  echo "usage: scripts/bench.sh [quick|full] [jobs]" >&2
  exit 2
fi

cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs" --target \
  bench_table2_main bench_fig_concurrency bench_fig_server

if [[ "$mode" == quick ]]; then
  table2_flags=(--clones=60 --intvl=1)
  conc_flags=(--txns=150 --sync_txns=30 --queries=1500 --materials=128)
  server_flags=(--queries=800 --materials=96 --open_reqs=2500)
else
  table2_flags=()
  conc_flags=()
  server_flags=()
fi

echo "== bench: table2_main ($mode) =="
"$root/build/bench/bench_table2_main" "${table2_flags[@]}" \
  --json="$root/BENCH_table2_main.json"

echo "== bench: fig_concurrency ($mode) =="
"$root/build/bench/bench_fig_concurrency" "${conc_flags[@]}" \
  --json="$root/BENCH_fig_concurrency.json"

echo "== bench: fig_server ($mode) =="
"$root/build/bench/bench_fig_server" "${server_flags[@]}" \
  --json="$root/BENCH_fig_server.json"

echo
echo "wrote:"
ls -l "$root"/BENCH_*.json
