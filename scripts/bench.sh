#!/usr/bin/env bash
# Benchmark trajectory: runs the JSON-emitting benches and writes
# BENCH_<name>.json at the repo root, so successive commits leave a
# machine-readable performance trail (CI uploads them as artifacts).
#
# Usage: scripts/bench.sh [quick|full] [jobs]
#
#   quick — small deterministic sizes, minutes not hours; the default and
#           what CI runs. Numbers are noisy at this scale; the files are
#           for trend-watching and the embedded correctness checks
#           (cross-version checksums, read-mostly scaling gate), not for
#           quoting.
#   full  — paper-scale runs (see EXPERIMENTS.md for the intended sizes).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-quick}"
jobs="${2:-$(nproc)}"

if [[ "$mode" != quick && "$mode" != full ]]; then
  echo "usage: scripts/bench.sh [quick|full] [jobs]" >&2
  exit 2
fi

cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs" --target \
  bench_table2_main bench_fig_concurrency bench_fig_server bench_fig_snapshot

if [[ "$mode" == quick ]]; then
  table2_flags=(--clones=60 --intvl=1)
  conc_flags=(--txns=150 --sync_txns=30 --queries=1500 --materials=128)
  server_flags=(--queries=800 --materials=96 --open_reqs=2500)
  snapshot_flags=(--batches=60 --batch=8 --scans=10)
else
  table2_flags=()
  conc_flags=()
  server_flags=()
  snapshot_flags=()
fi

# Runs one bench binary and insists on a fresh, non-empty JSON report: the
# stale file is removed first, so a bench that crashes (or silently writes
# nothing) fails the run instead of leaving the previous commit's numbers
# in place under this commit's name.
run_bench() {
  local name="$1"; shift
  local out="$root/BENCH_${name}.json"
  echo "== bench: $name ($mode) =="
  rm -f "$out"
  "$root/build/bench/bench_${name}" "$@" --json="$out"
  if [[ ! -s "$out" ]]; then
    echo "ERROR: bench_${name} exited 0 but wrote no JSON to $out" >&2
    exit 1
  fi
}

run_bench table2_main "${table2_flags[@]}"
run_bench fig_concurrency "${conc_flags[@]}"
run_bench fig_server "${server_flags[@]}"
run_bench fig_snapshot "${snapshot_flags[@]}"

echo
echo "wrote:"
ls -l "$root"/BENCH_*.json
