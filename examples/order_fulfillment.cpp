// Order fulfillment: LabBase beyond the genome lab.
//
// The paper positions LabFlow-1 as a benchmark for *high-throughput
// workflow management* in general — the genome center is the motivating
// instance, not the limit. This example runs an e-commerce order workflow
// (payment failure loop, batched shipping) through the same wrapper on the
// Texas storage manager, then demonstrates run-time schema evolution by
// adding a carrier attribute to ship_order mid-stream.
//
// Usage: order_fulfillment [orders]   (default 200)

#include <iostream>

#include "labbase/labbase.h"
#include "texas/texas_manager.h"
#include "workflow/graph.h"
#include "workflow/simulator.h"

using labflow::Oid;
using labflow::Status;
using labflow::Timestamp;
using labflow::Value;
namespace labbase = labflow::labbase;
namespace workflow = labflow::workflow;

int main(int argc, char** argv) {
  int orders = argc > 1 ? std::atoi(argv[1]) : 200;
  if (orders < 1) orders = 200;

  labflow::texas::TexasOptions storage_opts;
  storage_opts.base.path = "/tmp/labflow_orders.db";
  storage_opts.client_clustering = true;  // Texas+TC
  auto mgr = labflow::texas::TexasManager::Open(storage_opts);
  if (!mgr.ok()) {
    std::cerr << mgr.status().ToString() << "\n";
    return 1;
  }
  auto base = labbase::LabBase::Open(mgr->get(), labbase::LabBaseOptions{});
  if (!base.ok()) {
    std::cerr << base.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<labbase::LabBase::Session> db = (*base)->OpenSession();

  workflow::WorkflowGraph graph = workflow::OrderFulfillmentWorkflow();
  workflow::SimpleSimulator sim(db.get(), graph, /*seed=*/2024);
  auto steps = sim.Run(orders);
  if (!steps.ok()) {
    std::cerr << steps.status().ToString() << "\n";
    return 1;
  }
  std::cout << orders << " orders processed in " << steps.value()
            << " workflow steps\n";

  const labbase::Schema& schema = db->schema();
  std::cout << "\nFinal state distribution:\n";
  for (const std::string& state : graph.states) {
    auto id = schema.StateByName(state);
    if (!id.ok()) continue;
    auto n = db->CountInState(id.value());
    if (n.ok() && n.value() > 0) {
      std::cout << "  " << state << ": " << n.value() << "\n";
    }
  }

  // Audit: how many orders needed the payment-failure loop?
  labbase::ClassId order_cls = schema.MaterialClassByName("order").value();
  labbase::AttrId auth = schema.AttributeByName("auth_code").value();
  auto all = db->MaterialsOfClass(order_cls).value();
  int retried = 0;
  for (Oid o : all) {
    auto hist = db->History(o, auth);
    if (hist.ok() && hist->size() > 1) ++retried;
  }
  std::cout << "\norders that needed a payment retry: " << retried << "\n";

  // Run-time schema evolution: ship_order gains a carrier attribute.
  auto evolved = db->DefineStepClass("ship_order", {"tracking", "carrier"});
  if (!evolved.ok()) {
    std::cerr << evolved.status().ToString() << "\n";
    return 1;
  }
  labbase::AttrId carrier = schema.AttributeByName("carrier").value();
  std::cout << "\nship_order evolved to "
            << schema.VersionCount(evolved.value()).value()
            << " versions; shipping one more order with the new schema:\n";

  labbase::StateId packed = schema.StateByName("packed").value();
  labbase::StateId shipped = schema.StateByName("shipped").value();
  auto late_order = db->CreateMaterial(order_cls, "order-late", packed,
                                          Timestamp(1));
  if (!late_order.ok()) {
    std::cerr << late_order.status().ToString() << "\n";
    return 1;
  }
  labbase::StepEffect effect;
  effect.material = late_order.value();
  effect.tags = {
      {schema.AttributeByName("tracking").value(),
       Value::String("TRK-99999")},
      {carrier, Value::String("overnight-express")},
  };
  effect.new_state = shipped;
  auto step = db->RecordStep(evolved.value(), Timestamp(2), {effect});
  if (!step.ok()) {
    std::cerr << step.status().ToString() << "\n";
    return 1;
  }
  auto v = db->MostRecent(late_order.value(), carrier);
  std::cout << "  order-late carrier = " << v->ToString()
            << " (step instance on version "
            << db->GetStep(step.value())->version << ")\n";

  if (Status st = db->Checkpoint(); !st.ok()) {
    std::cerr << "checkpoint failed: " << st.ToString() << "\n";
    return 1;
  }
  db.reset();
  base->reset();
  if (Status st = (*mgr)->Close(); !st.ok()) {
    std::cerr << "close failed: " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}
