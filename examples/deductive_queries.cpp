// Deductive queries: the paper's Section 6/8 query language, end to end.
//
// Builds a small laboratory database *entirely through the deductive
// language* (schema definition, workflow tracking and querying are all
// predicates), then walks through the paper's query families: work queues,
// most-recent values, histories, set generation (setof), counting, views,
// and negation. With a terminal attached, drops into a tiny REPL.
//
// Usage: deductive_queries            (demo + REPL when interactive)

#include <unistd.h>

#include <iostream>
#include <string>

#include "labbase/labbase.h"
#include "mm/mm_manager.h"
#include "query/solver.h"

namespace labbase = labflow::labbase;
namespace query = labflow::query;

namespace {

/// Runs one query and pretty-prints its solutions.
void Show(query::Solver* solver, const std::string& text, int64_t limit = 10) {
  std::cout << "?- " << text << "\n";
  auto solutions = solver->QueryAll(text, limit);
  if (!solutions.ok()) {
    std::cout << "   error: " << solutions.status().ToString() << "\n\n";
    return;
  }
  if (solutions->empty()) {
    std::cout << "   no.\n\n";
    return;
  }
  for (const auto& sol : *solutions) {
    if (sol.vars.empty()) {
      std::cout << "   yes.\n";
      break;
    }
    std::cout << "   ";
    bool first = true;
    for (const auto& [var, term] : sol.vars) {
      if (!first) std::cout << ", ";
      std::cout << var << " = " << term.ToString();
      first = false;
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  labflow::mm::MmManager mgr("mm");
  auto base = labbase::LabBase::Open(&mgr, labbase::LabBaseOptions{});
  if (!base.ok()) {
    std::cerr << base.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<labbase::LabBase::Session> db = (*base)->OpenSession();
  query::Solver solver(db.get());

  // ---- Build the lab through the language itself (paper Section 8.3) ----
  const char* setup[] = {
      "define_material_class(clone), define_material_class(tclone)",
      "define_state(cl_received), define_state(waiting_for_sequencing), "
      "define_state(waiting_for_incorporation), define_state(tc_blasted)",
      "define_step_class(determine_sequence, [sequence, error_rate])",
      "define_step_class(blast_search, [hits])",
      "create_material(clone, \"cl-1\", cl_received, C)",
      "create_material(tclone, \"tc-1\", waiting_for_sequencing, T1)",
      "create_material(tclone, \"tc-2\", waiting_for_sequencing, T2)",
      "create_material(tclone, \"tc-3\", waiting_for_sequencing, T3)",
      // Sequencing results; tc-2's first read is poor and is redone with a
      // later valid time.
      "material_name(M, \"tc-1\"), record_step(determine_sequence, @100, "
      "[effect(M, [tag(sequence, \"ACGTTGCA\"), tag(error_rate, 0.01)], "
      "waiting_for_incorporation)])",
      "material_name(M, \"tc-2\"), record_step(determine_sequence, @110, "
      "[effect(M, [tag(sequence, \"NNNNNNNN\"), tag(error_rate, 0.4)], "
      "waiting_for_incorporation)])",
      "material_name(M, \"tc-2\"), record_step(determine_sequence, @150, "
      "[effect(M, [tag(sequence, \"GGGGCCCC\"), tag(error_rate, 0.02)], "
      "same)])",
      "material_name(M, \"tc-1\"), record_step(blast_search, @200, "
      "[effect(M, [tag(hits, [[\"genbank\", \"U00096\", 812.5], "
      "[\"embl\", \"X52700\", 97.2]])], tc_blasted)])",
  };
  for (const char* stmt : setup) {
    auto ok = solver.Prove(stmt);
    if (!ok.ok() || !ok.value()) {
      std::cerr << "setup failed: " << stmt << "\n";
      if (!ok.ok()) std::cerr << ok.status().ToString() << "\n";
      return 1;
    }
  }

  // ---- Views (the paper's workflow-independent view layer) ----
  if (!solver
           .LoadProgram(
               "sequenced(M) <- most_recent(M, sequence, S).\n"
               "good_read(M) <- most_recent(M, error_rate, E), E =< 0.05.\n"
               "backlog(S, N) <- workflow_state(S), count(state(M, S), N).\n")
           .ok()) {
    std::cerr << "view definition failed\n";
    return 1;
  }

  std::cout << "== Work queue (paper 8.1) ==\n";
  Show(&solver, "state(M, waiting_for_sequencing), material_name(M, Name)");

  std::cout << "== Most-recent values: valid time, not entry order ==\n";
  Show(&solver, "material_name(M, \"tc-2\"), most_recent(M, sequence, S)");
  Show(&solver, "material_name(M, \"tc-2\"), history(M, sequence, H)");

  std::cout << "== Set generation (paper 8.2): all sequenced tclones ==\n";
  Show(&solver, "setof(Name, and(sequenced(M), material_name(M, Name)), L)");

  std::cout << "== BLAST hit lists are first-class values ==\n";
  Show(&solver, "material_name(M, \"tc-1\"), most_recent(M, hits, H)");

  std::cout << "== Counting and views ==\n";
  Show(&solver, "backlog(waiting_for_sequencing, N)");
  Show(&solver, "count(good_read(M), N)");

  std::cout << "== Negation as failure: sequenced but not yet blasted ==\n";
  Show(&solver,
       "sequenced(M), \\+ state(M, tc_blasted), material_name(M, Name)");

  if (isatty(STDIN_FILENO)) {
    std::cout << "Interactive mode — enter queries (empty line quits):\n";
    std::string line;
    while (std::cout << "?- " && std::getline(std::cin, line)) {
      if (line.empty()) break;
      Show(&solver, line, 25);
    }
  }
  return 0;
}
