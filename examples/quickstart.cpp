// Quickstart: the LabBase workflow-DBMS API in ~80 lines.
//
// Opens a persistent OStore database, defines a tiny workflow schema,
// tracks one material through two steps, and runs the basic queries:
// most-recent value, full history (including an out-of-order entry), and
// the state work queue.

#include <iostream>

#include "labbase/labbase.h"
#include "ostore/ostore_manager.h"

using labflow::Oid;
using labflow::Timestamp;
using labflow::Value;
namespace labbase = labflow::labbase;
namespace ostore = labflow::ostore;

inline labflow::Status AsStatus(const labflow::Status& s) { return s; }
template <typename T>
labflow::Status AsStatus(const labflow::Result<T>& r) {
  return r.status();
}

#define CHECK_OK(expr)                                            \
  do {                                                            \
    labflow::Status _st = AsStatus((expr));                       \
    if (!_st.ok()) {                                              \
      std::cerr << #expr << ": " << _st.ToString() << "\n";       \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main() {
  // 1. A storage manager (ObjectStore-like: segments, transactions, WAL).
  ostore::OstoreOptions storage_opts;
  storage_opts.base.path = "/tmp/labflow_quickstart.db";
  storage_opts.base.truncate = true;
  auto mgr = ostore::OstoreManager::Open(storage_opts);
  CHECK_OK(mgr);

  // 2. LabBase on top: the workflow wrapper with the fixed storage schema.
  auto db_or = labbase::LabBase::Open(mgr->get(), labbase::LabBaseOptions{});
  CHECK_OK(db_or);
  // All data access goes through a session (one per client).
  std::unique_ptr<labbase::LabBase::Session> session = (*db_or)->OpenSession();
  labbase::LabBase::Session& db = *session;

  // 3. User schema: evolves freely at run time.
  auto clone = db.DefineMaterialClass("clone");
  CHECK_OK(clone);
  auto received = db.DefineState("received");
  auto sequenced = db.DefineState("sequenced");
  CHECK_OK(received);
  CHECK_OK(sequenced);
  auto seq_step =
      db.DefineStepClass("determine_sequence", {"sequence", "error_rate"});
  CHECK_OK(seq_step);
  labbase::AttrId sequence = db.schema().AttributeByName("sequence").value();

  // 4. Workflow tracking: create a material and record steps against it.
  auto m = db.CreateMaterial(clone.value(), "cl-0001", received.value(),
                             Timestamp(1000));
  CHECK_OK(m);

  labbase::StepEffect first;
  first.material = m.value();
  first.tags = {{sequence, Value::String("ACGTACGT")}};
  first.new_state = sequenced.value();
  CHECK_OK(db.RecordStep(seq_step.value(), Timestamp(2000), {first}));

  // A correction arrives later but carries an *earlier* valid time: it must
  // land in the history without becoming the most-recent value.
  labbase::StepEffect late;
  late.material = m.value();
  late.tags = {{sequence, Value::String("NNNN")}};
  CHECK_OK(db.RecordStep(seq_step.value(), Timestamp(1500), {late}));

  // 5. Queries.
  auto latest = db.MostRecent(m.value(), "sequence");
  CHECK_OK(latest);
  std::cout << "most recent sequence: " << latest->ToString() << "\n";

  auto history = db.History(m.value(), sequence);
  CHECK_OK(history);
  std::cout << "history (by valid time):\n";
  for (const labbase::HistoryEntry& e : *history) {
    std::cout << "  @" << e.time.micros << "  " << e.value.ToString() << "\n";
  }

  auto queue = db.MaterialsInState(sequenced.value());
  CHECK_OK(queue);
  std::cout << "materials in 'sequenced': " << queue->size() << "\n";

  // 6. Durability: checkpoint and close.
  CHECK_OK(db.Checkpoint());
  CHECK_OK((*mgr)->Close());
  std::cout << "done; database at " << storage_opts.base.path << "\n";
  return 0;
}
