// lab_admin: a small administration CLI over a persistent LabBase database.
//
// Demonstrates the operational side of the library: creating and reopening
// a durable database, loading workload data into it, and inspecting it with
// reports, audits and ad-hoc deductive queries — across process runs.
//
// Usage:
//   lab_admin <db-path> init                 create an empty genome-lab db
//   lab_admin <db-path> load <clones>        run the workflow for N clones
//   lab_admin <db-path> summary              schema/state/storage report
//   lab_admin <db-path> audit <material>     full event history of one item
//   lab_admin <db-path> query "<goal>"       run a deductive query
//
// Example session:
//   lab_admin /tmp/lab.db init
//   lab_admin /tmp/lab.db load 6
//   lab_admin /tmp/lab.db summary
//   lab_admin /tmp/lab.db audit cl-000001
//   lab_admin /tmp/lab.db query "state(M, cl_finished), material_name(M, N)"

#include <filesystem>
#include <iostream>

#include "labbase/dump.h"
#include "labbase/labbase.h"
#include "labflow/apply.h"
#include "labflow/generator.h"
#include "ostore/ostore_manager.h"
#include "query/solver.h"
#include "common/status_macros.h"

using labflow::Oid;
using labflow::Status;
namespace labbase = labflow::labbase;
namespace bench = labflow::bench;
namespace query = labflow::query;

namespace {

labflow::Result<std::unique_ptr<labflow::ostore::OstoreManager>> OpenDb(
    const std::string& path, bool create) {
  labflow::ostore::OstoreOptions opts;
  opts.base.path = path;
  opts.base.truncate = create;
  if (!create && !std::filesystem::exists(path)) {
    return Status::NotFound("no database at " + path +
                            " (run 'init' first)");
  }
  return labflow::ostore::OstoreManager::Open(opts);
}

Status Load(labbase::LabBase::Session* db, int clones) {
  bench::WorkloadParams params;
  params.base_clones = clones;
  bench::WorkloadGenerator generator(params);
  LABFLOW_RETURN_IF_ERROR(generator.graph().InstallSchema(db));
  bench::Event ev;
  int64_t steps = 0;
  while (generator.Next(&ev)) {
    if (!ev.IsUpdate()) continue;
    LABFLOW_RETURN_IF_ERROR(db->Begin());
    Status st = bench::ApplyUpdate(db, ev);
    if (!st.ok()) {
      LABFLOW_IGNORE_STATUS(db->Abort(),
                            "best-effort rollback; the update's own error "
                            "is returned");
      return st;
    }
    LABFLOW_RETURN_IF_ERROR(db->Commit());
    if (ev.type == bench::Event::Type::kRecordStep) ++steps;
  }
  std::cout << "loaded " << steps << " steps for " << clones << " clones\n";
  return db->Checkpoint();
}

int Usage() {
  std::cerr << "usage: lab_admin <db-path> "
               "(init | load <clones> | summary | audit <material> | "
               "query \"<goal>\")\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string path = argv[1];
  std::string command = argv[2];

  bool create = (command == "init");
  auto mgr = OpenDb(path, create);
  if (!mgr.ok()) {
    std::cerr << mgr.status().ToString() << "\n";
    return 1;
  }
  auto base = labbase::LabBase::Open(mgr->get(), labbase::LabBaseOptions{});
  if (!base.ok()) {
    std::cerr << base.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<labbase::LabBase::Session> db = (*base)->OpenSession();

  Status st;
  if (command == "init") {
    st = db->Checkpoint();
    if (st.ok()) std::cout << "created " << path << "\n";
  } else if (command == "load" && argc >= 4) {
    st = Load(db.get(), std::max(1, std::atoi(argv[3])));
  } else if (command == "summary") {
    st = labbase::DumpSummary(db.get(), std::cout);
  } else if (command == "audit" && argc >= 4) {
    auto m = db->FindMaterialByName(argv[3]);
    st = m.ok() ? labbase::DumpMaterialAudit(db.get(), m.value(), std::cout)
                : m.status();
  } else if (command == "query" && argc >= 4) {
    query::Solver solver(db.get());
    auto solutions = solver.QueryAll(argv[3], 100);
    if (!solutions.ok()) {
      st = solutions.status();
    } else if (solutions->empty()) {
      std::cout << "no.\n";
    } else {
      for (const auto& sol : *solutions) {
        if (sol.vars.empty()) {
          std::cout << "yes.\n";
          break;
        }
        bool first = true;
        for (const auto& [var, term] : sol.vars) {
          if (!first) std::cout << ", ";
          std::cout << var << " = " << term.ToString();
          first = false;
        }
        std::cout << "\n";
      }
    }
  } else {
    return Usage();
  }

  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  db.reset();
  base->reset();
  return (*mgr)->Close().ok() ? 0 : 1;
}
