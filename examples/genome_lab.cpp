// Genome lab: a small end-to-end run of the paper's Appendix-B workflow.
//
// Executes a scaled-down LabFlow-1 stream (the full genome-mapping
// pipeline: clones -> transposon subclones -> gels -> sequencing -> BLAST
// -> assembly, with failure loops and schema evolution) against the OStore
// storage manager, then uses the *deductive query language* to produce the
// kind of lab report the Genome Center ran: per-state backlogs, a view over
// base predicates, and a full audit of one clone's event history.
//
// Usage: genome_lab [clones]          (default 12)

#include <iostream>

#include "labflow/apply.h"
#include "labflow/driver.h"
#include "labflow/generator.h"
#include "labflow/server_version.h"
#include "query/solver.h"
#include "common/status_macros.h"

using labflow::Oid;
using labflow::Status;
namespace bench = labflow::bench;
namespace labbase = labflow::labbase;
namespace query = labflow::query;

namespace {

Status LoadStream(labbase::LabBase::Session* db, const bench::WorkloadParams& params) {
  bench::WorkloadGenerator generator(params);
  LABFLOW_RETURN_IF_ERROR(generator.graph().InstallSchema(db));
  bench::Event ev;
  while (generator.Next(&ev)) {
    if (!ev.IsUpdate()) continue;
    LABFLOW_RETURN_IF_ERROR(bench::ApplyUpdate(db, ev));
  }
  return Status::OK();
}

int Run(int clones) {
  bench::ServerOptions server_opts;
  server_opts.path = "/tmp/labflow_genome_lab.db";
  auto mgr = bench::CreateServer(bench::ServerVersion::kOstore, server_opts);
  if (!mgr.ok()) {
    std::cerr << mgr.status().ToString() << "\n";
    return 1;
  }
  auto base = labbase::LabBase::Open(mgr->get(), labbase::LabBaseOptions{});
  if (!base.ok()) {
    std::cerr << base.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<labbase::LabBase::Session> db = (*base)->OpenSession();

  bench::WorkloadParams params;
  params.base_clones = clones;
  params.intvl = 1.0;
  std::cout << "Running the genome-mapping workflow for " << clones
            << " clones...\n";
  Status st = LoadStream(db.get(), params);
  if (!st.ok()) {
    std::cerr << "load failed: " << st.ToString() << "\n";
    return 1;
  }
  const labbase::LabBaseStats& stats = db->stats();
  std::cout << "  " << stats.materials_created << " materials, "
            << stats.steps_recorded << " steps recorded\n\n";

  // ---- Lab report, in the deductive query language ----
  query::Solver solver(db.get());
  st = solver.LoadProgram(
      // A view: backlog per state.
      "backlog(S, N) <- workflow_state(S), count(state(M, S), N).\n"
      // A view over derived attributes: low-quality reads to redo.
      "poor_read(M) <- most_recent(M, read_quality, Q), Q < 0.2.\n"
      // Clones that made it all the way through.
      "finished(C) <- clone(C), state(C, cl_finished).\n");
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  std::cout << "Backlog per state (backlog(S, N), N > 0):\n";
  auto backlog = solver.QueryAll("backlog(S, N), N > 0");
  if (!backlog.ok()) {
    std::cerr << backlog.status().ToString() << "\n";
    return 1;
  }
  for (const auto& sol : *backlog) {
    std::cout << "  " << sol.vars.at("S").ToString() << ": "
              << sol.vars.at("N").ToString() << "\n";
  }

  auto finished = solver.QueryAll("count(finished(C), N)");
  auto poor = solver.QueryAll("count(poor_read(M), N)");
  if (finished.ok() && poor.ok()) {
    std::cout << "\nfinished clones: "
              << (*finished)[0].vars.at("N").ToString()
              << ", poor reads flagged: " << (*poor)[0].vars.at("N").ToString()
              << "\n";
  }

  // Audit one clone end to end.
  auto first_clone = solver.QueryAll("finished(C), material_name(C, Name)", 1);
  if (first_clone.ok() && !first_clone->empty()) {
    std::string name = (*first_clone)[0].vars.at("Name").ToString();
    std::string c = (*first_clone)[0].vars.at("C").ToString();
    std::cout << "\nAudit of clone " << name << " (" << c << "):\n";
    auto audit = solver.QueryAll("most_recent(" + c + ", A, V)");
    if (audit.ok()) {
      for (const auto& sol : *audit) {
        std::string v = sol.vars.at("V").ToString();
        if (v.size() > 48) v = v.substr(0, 45) + "...";
        std::cout << "  " << sol.vars.at("A").ToString() << " = " << v << "\n";
      }
    }
    auto hist = solver.QueryAll("history(" + c + ", coverage, H)");
    if (hist.ok() && !hist->empty()) {
      std::cout << "  coverage history: "
                << (*hist)[0].vars.at("H").ToString() << "\n";
    }
  }

  // Schema evolution left its trace: versioned step classes.
  auto versions =
      db->schema().VersionCount(
          db->schema().StepClassByName("determine_sequence").value());
  if (versions.ok()) {
    std::cout << "\ndetermine_sequence has " << versions.value()
              << " schema version(s) — old instances were never migrated\n";
  }

  if (Status st = db->Checkpoint(); !st.ok()) {
    std::cerr << "checkpoint failed: " << st.ToString() << "\n";
    return 1;
  }
  db.reset();
  base->reset();
  if (Status st = (*mgr)->Close(); !st.ok()) {
    std::cerr << "close failed: " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int clones = argc > 1 ? std::atoi(argv[1]) : 12;
  return Run(clones < 1 ? 12 : clones);
}
